//! Oracle-differential fuzzing of every LSQ design.
//!
//! Each iteration derives a workload deterministically from the fuzz seed
//! — a mutated [`WorkloadSpec`], a calibrated benchmark, or an adversarial
//! generator — and runs **every registered design family** on the
//! identical trace through one [`SimSession`], together with the two
//! references: [`DesignSpec::Unbounded`] (the capacity-free timing
//! reference) and [`DesignSpec::Oracle`] (the executable disambiguation
//! specification, which asserts its own answers in-pipeline). Every
//! bounded design additionally runs wrapped in
//! [`samie_lsq::CheckedLsq`], so each of its forwarding answers is
//! cross-checked against the oracle model without perturbing its timing.
//!
//! A mismatch is any of:
//!
//! * a panic anywhere in the session (oracle divergence assertions, the
//!   simulator's no-commit watchdog, internal invariants),
//! * oracle and unbounded stats differing (they are specified to be
//!   bit-identical),
//! * a design violating the committed-instruction contract
//!   (`instrs ≤ committed < instrs + overshoot`),
//! * a design's committed load/store/branch mix drifting from the
//!   unbounded reference beyond the commit-group slack (identical traces
//!   must commit identical prefixes),
//! * more forwards than loads,
//! * any [`CheckedLsq`] forwarding divergence, or
//! * for real-program (`rv:*` and generated RV32IM) workloads, the
//!   [`rv_front::ArchOracle`] finding the replayed op stream or the
//!   re-executed architectural state diverging from the committed record.
//!
//! On mismatch the consumed trace prefix is captured, shrunk with a
//! ddmin-style loop to a minimal op sequence that still mismatches, and
//! written to `results/` as a `.strc` repro replayable with
//! `samie-exp sweep --bench @results/fuzz-repro-iter3.strc` or
//! [`Workload::replay_file`].
//!
//! The CLI front end is `samie-exp fuzz --iters N --seed S`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ooo_sim::SimStats;
use samie_lsq::{checked, ArbConfig, CheckedLsq, DesignHandle, DesignSpec, SamieConfig};
use spec_traces::{all_workloads, by_name, Workload, WorkloadSpec};
use trace_isa::{MicroOp, RecordedTrace};

use crate::runner::{parallel_map_with, RunConfig};
use crate::session::SimSession;
use crate::sweep::designs_from_specs;

/// Committed-count slack: a design may overshoot its instruction target
/// by less than one commit group, and warm-up boundaries shift the
/// measured window by the same amount — 64 bounds both comfortably.
const COMMIT_SLACK: u64 = 64;

/// Configuration of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Iterations (one workload × all designs each).
    pub iters: u64,
    /// Campaign seed: same seed, same verdict, bit for bit.
    pub seed: u64,
    /// Per-iteration simulation length.
    pub rc: RunConfig,
    /// Worker threads (0 = all cores); iterations are independent.
    pub jobs: usize,
    /// Where shrunken `.strc` repros land (`None` disables writing).
    pub out: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 100,
            seed: 42,
            rc: RunConfig {
                instrs: 3_000,
                warmup: 800,
                seed: 0, // per-iteration, derived from the campaign seed
            },
            jobs: 0,
            out: Some(PathBuf::from("results")),
        }
    }
}

/// One detected design-vs-oracle mismatch.
#[derive(Debug, Clone)]
pub struct FuzzMismatch {
    /// Iteration that found it.
    pub iter: u64,
    /// Workload that provoked it.
    pub workload: String,
    /// What went wrong (one entry per violated invariant).
    pub failures: Vec<String>,
    /// Shrunken repro trace, if one was written.
    pub repro: Option<PathBuf>,
    /// Ops in the shrunken repro.
    pub repro_ops: usize,
}

/// The campaign verdict.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: u64,
    /// All mismatches, in iteration order.
    pub mismatches: Vec<FuzzMismatch>,
}

impl FuzzReport {
    /// Did every design agree with the oracle on every input?
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The design lineup of one iteration: the references plus every bounded
/// family, geometry-mutated for a third of the iterations.
fn iteration_designs(rng: &mut SmallRng) -> Vec<DesignHandle> {
    let mutate = rng.gen_bool(1.0 / 3.0);
    let samie = if mutate {
        DesignSpec::Samie(SamieConfig {
            banks: 1 << rng.gen_range(1..=6u32),
            entries_per_bank: rng.gen_range(1..=4),
            slots_per_entry: 1 << rng.gen_range(0..=3u32),
            shared_entries: rng.gen_range(1..=16),
            abuf_slots: rng.gen_range(4..=64),
        })
    } else {
        DesignSpec::samie_paper()
    };
    let arb = if mutate {
        DesignSpec::Arb(ArbConfig {
            banks: 1 << rng.gen_range(1..=6u32),
            rows_per_bank: rng.gen_range(1..=4),
            max_inflight: rng.gen_range(8..=128),
        })
    } else {
        "arb".parse().expect("default arb spec")
    };
    let conv = DesignSpec::Conventional {
        entries: *[8usize, 32, 128].get(rng.gen_range(0..3usize)).unwrap(),
    };
    designs_from_specs([conv, DesignSpec::filtered_paper(), samie, arb])
}

/// The workload of one iteration: an adversarial/calibrated/real-program
/// catalog entry half the time, a generated straight-line RV32IM program
/// (assembled and emulated, so the oracle has real architectural state to
/// check) a fifth of the time, a random mutant of a calibrated spec
/// otherwise.
fn iteration_workload(rng: &mut SmallRng) -> Workload {
    if rng.gen_bool(0.5) {
        let catalog = all_workloads();
        catalog[rng.gen_range(0..catalog.len())].clone()
    } else if rng.gen_bool(0.4) {
        rv_mutant(rng.gen(), rng.gen_range(200..1_200))
    } else {
        Workload::from(mutate_spec(rng))
    }
}

/// A generated RV32IM program as a fuzz workload. The generator only
/// emits well-formed source, so assembly/emulation failure is a frontend
/// bug — surfaced as a panic the campaign records as a mismatch.
pub fn rv_mutant(seed: u64, n_ops: usize) -> Workload {
    let source = rv_front::gen_program(seed, n_ops);
    Workload::rv_source(&format!("rv-fuzz:{seed:016x}"), "rv-fuzz.s", &source)
        .unwrap_or_else(|e| panic!("generated program rejected (seed {seed:#x}): {e}"))
}

/// A random valid spec mutation: knobs drawn across their whole legal
/// ranges (and a bit beyond typical programs), then clamped into what
/// [`WorkloadSpec::validate`] accepts.
pub fn mutate_spec(rng: &mut SmallRng) -> WorkloadSpec {
    let base = *by_name("gcc").expect("gcc is calibrated");
    let f_load = rng.gen_range(0.05..0.40);
    let f_store = rng.gen_range(0.02..0.25);
    let f_branch = rng.gen_range(0.02..0.20);
    let line_reuse = rng.gen_range(0.0..0.85);
    let random_frac = (1.0f64 - line_reuse).min(rng.gen_range(0.0..0.4));
    let forward_frac = (1.0f64 - line_reuse - random_frac).min(rng.gen_range(0.0..0.25));
    let mut spec = WorkloadSpec {
        name: "fuzz",
        f_load,
        f_store,
        f_branch,
        dep_density: rng.gen_range(0.0..0.9),
        dep_distance: rng.gen_range(1..48),
        branch_entropy: rng.gen_range(0.0..0.5),
        streams: rng.gen_range(1..20),
        stream_stride: *[4u64, 8, 16, 32, 64, 2048, 4096]
            .get(rng.gen_range(0..7usize))
            .unwrap(),
        line_reuse,
        random_frac,
        forward_frac,
        working_set: 1 << rng.gen_range(14..24u32),
        reuse_window: rng.gen_range(1..=16),
        bank_skew: rng.gen_range(0.0..1.0),
        hot_banks: rng.gen_range(1..=8),
        conflict_duty: rng.gen_range(0.0..0.7),
        access_size: *[1u8, 2, 4, 8].get(rng.gen_range(0..4usize)).unwrap(),
        ..base
    };
    // FP mix only when the class fractions leave room.
    let room = 1.0 - (spec.f_load + spec.f_store + spec.f_branch) - 0.05;
    spec.f_fp_alu = rng.gen_range(0.0..room.max(0.001) / 2.0);
    spec.validate().expect("mutation stays in the legal space");
    spec
}

/// Run one workload through every design + references and collect every
/// violated invariant (empty = clean). Public so the equivalence-matrix
/// test and the fuzzer share one definition of "mismatch".
pub fn differential_check(
    workload: &Workload,
    designs: &[DesignHandle],
    rc: &RunConfig,
) -> Vec<String> {
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut checked_verdicts: Vec<(String, u64, Vec<String>)> = Vec::new();
        // The architectural oracle is a no-op for synthetic workloads;
        // for `rv:*` programs it re-executes the emulator and panics on
        // any state divergence — caught below as a mismatch.
        let mut session = SimSession::new(DesignSpec::Unbounded, workload)
            .design(DesignSpec::Oracle)
            .arch_oracle()
            .run_config(*rc);
        for d in designs {
            session = session.design(checked(d.clone()));
        }
        let report = session
            .on_finish(|id, lsq| {
                if let Some(c) = lsq.as_any().downcast_ref::<CheckedLsq>() {
                    checked_verdicts.push((
                        id.to_string(),
                        c.mismatch_count(),
                        c.mismatches().to_vec(),
                    ));
                }
            })
            .run();
        (report, checked_verdicts)
    }));
    let (report, checked_verdicts) = match run {
        Ok(r) => r,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            return vec![format!("panic during session: {msg}")];
        }
    };

    let mut failures = Vec::new();
    let reference: &SimStats = &report.runs[0].stats; // unbounded
    let oracle: &SimStats = &report.runs[1].stats;
    if oracle != reference {
        failures.push(format!(
            "oracle and unbounded stats diverge: oracle ipc {:.6} vs unbounded {:.6}",
            oracle.ipc(),
            reference.ipc()
        ));
    }
    for run in &report.runs {
        let s = &run.stats;
        if s.committed < rc.instrs || s.committed >= rc.instrs + COMMIT_SLACK {
            failures.push(format!(
                "{}: committed {} outside [{}, {})",
                run.id,
                s.committed,
                rc.instrs,
                rc.instrs + COMMIT_SLACK
            ));
        }
        for (what, got, want) in [
            ("loads", s.loads, reference.loads),
            ("stores", s.stores, reference.stores),
            ("branches", s.branches, reference.branches),
        ] {
            if got.abs_diff(want) >= COMMIT_SLACK {
                failures.push(format!(
                    "{}: committed {what} {got} vs reference {want} (identical traces)",
                    run.id
                ));
            }
        }
        if s.forwarded_loads > s.loads + COMMIT_SLACK {
            failures.push(format!(
                "{}: {} forwards for {} committed loads",
                run.id, s.forwarded_loads, s.loads
            ));
        }
    }
    for (id, count, reports) in &checked_verdicts {
        if *count > 0 {
            failures.push(format!(
                "{id}: {count} forwarding answers diverged from the oracle; first: {}",
                reports.first().map(String::as_str).unwrap_or("<none>")
            ));
        }
    }
    failures
}

/// Capture the trace prefix a differential run consumes, as concrete ops.
fn capture_ops(workload: &Workload, rc: &RunConfig) -> Vec<MicroOp> {
    // A session that panicked mid-run consumed at most warmup + instrs
    // plus in-flight and batching slack; a clean run reports its exact
    // consumption. Run the cheap unbounded design alone to measure, and
    // pad for designs that fetch slightly further.
    let measured = catch_unwind(AssertUnwindSafe(|| {
        SimSession::new(DesignSpec::Unbounded, workload)
            .run_config(*rc)
            .run()
            .ops_consumed
    }))
    .unwrap_or(0);
    let n = measured.max(rc.warmup + rc.instrs) + 4096;
    let mut src = workload.build_trace(rc.seed);
    (0..n).map(|_| src.next_op()).collect()
}

/// ddmin-style shrink: repeatedly delete chunks while the mismatch still
/// reproduces, halving chunk size until single ops stick. Bounded by
/// `budget` candidate evaluations so a slow repro cannot stall a campaign.
pub fn shrink_ops(
    ops: Vec<MicroOp>,
    designs: &[DesignHandle],
    rc: &RunConfig,
    budget: usize,
) -> Vec<MicroOp> {
    let reproduces = |candidate: &[MicroOp]| -> bool {
        if candidate.is_empty() {
            return false;
        }
        let w = Workload::from_recorded(RecordedTrace::from_ops("fuzz-repro", candidate.to_vec()));
        !differential_check(&w, designs, rc).is_empty()
    };
    let mut cur = ops;
    let mut spent = 0usize;
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 && spent < budget {
        let mut any_progress = false;
        let mut start = 0;
        while start < cur.len() && spent < budget {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            spent += 1;
            if reproduces(&candidate) {
                cur = candidate;
                any_progress = true;
                // Retry the same offset: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !any_progress {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    cur
}

/// Run a fuzzing campaign. Deterministic per [`FuzzConfig::seed`];
/// iterations execute on [`FuzzConfig::jobs`] workers.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let iters: Vec<u64> = (0..cfg.iters).collect();
    let mismatches = parallel_map_with(cfg.jobs, &iters, |&iter| {
        // Split-mix the campaign seed per iteration so the stream is
        // independent of worker scheduling.
        let mut rng = SmallRng::seed_from_u64(
            cfg.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(iter),
        );
        let workload = iteration_workload(&mut rng);
        let designs = iteration_designs(&mut rng);
        let rc = RunConfig {
            seed: rng.gen(),
            ..cfg.rc
        };
        let failures = differential_check(&workload, &designs, &rc);
        if failures.is_empty() {
            return None;
        }
        // Shrink to a minimal replayable repro.
        let ops = capture_ops(&workload, &rc);
        let minimal = shrink_ops(ops, &designs, &rc, 160);
        let repro_ops = minimal.len();
        let repro = cfg.out.as_ref().and_then(|dir| {
            let path = dir.join(format!("fuzz-repro-iter{iter}.strc"));
            let rec = RecordedTrace::from_ops(format!("fuzz-repro-iter{iter}"), minimal);
            match rec.save(&path) {
                Ok(()) => Some(path),
                Err(e) => {
                    eprintln!("(could not write repro {}: {e})", path.display());
                    None
                }
            }
        });
        Some(FuzzMismatch {
            iter,
            workload: workload.name().to_string(),
            failures,
            repro,
            repro_ops,
        })
    });
    FuzzReport {
        iters: cfg.iters,
        mismatches: mismatches.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samie_lsq::{LoadStoreQueue, LsqFactory};
    use std::sync::Arc;

    fn quick_rc() -> RunConfig {
        RunConfig {
            instrs: 2_000,
            warmup: 500,
            seed: 7,
        }
    }

    #[test]
    fn clean_campaign_reports_no_mismatches() {
        let cfg = FuzzConfig {
            iters: 6,
            seed: 1,
            rc: quick_rc(),
            jobs: 2,
            out: None,
        };
        let report = run_fuzz(&cfg);
        assert_eq!(report.iters, 6);
        assert!(
            report.clean(),
            "unexpected mismatches: {:#?}",
            report.mismatches
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = FuzzConfig {
            iters: 4,
            seed: 9,
            rc: quick_rc(),
            jobs: 1,
            out: None,
        };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert_eq!(a.mismatches.len(), b.mismatches.len());
        assert_eq!(a.clean(), b.clean());
    }

    #[test]
    fn checked_wrapper_is_timing_transparent() {
        // A checked design must produce bit-identical stats to the bare
        // design — otherwise the fuzzer would test a different machine.
        let w = spec_traces::find_workload("gzip").unwrap();
        let plain = crate::runner::run_one(&w, DesignSpec::samie_paper(), &quick_rc());
        let wrapped = crate::runner::run_one(
            &w,
            checked(Arc::new(DesignSpec::samie_paper()) as DesignHandle),
            &quick_rc(),
        );
        assert_eq!(plain, wrapped);
    }

    /// A factory producing a design that silently refuses all forwards.
    struct BrokenFactory;

    impl LsqFactory for BrokenFactory {
        fn id(&self) -> String {
            "broken".into()
        }
        fn build(&self) -> Box<dyn LoadStoreQueue> {
            Box::new(samie_lsq::checked::ForwardDroppingLsq::new(
                DesignSpec::conventional_paper().build(),
            ))
        }
    }

    #[test]
    fn broken_design_is_caught_and_shrunk() {
        let designs: Vec<DesignHandle> = vec![Arc::new(BrokenFactory)];
        let w = spec_traces::find_workload("gzip").unwrap();
        let rc = quick_rc();
        let failures = differential_check(&w, &designs, &rc);
        assert!(
            failures
                .iter()
                .any(|f| f.contains("diverged from the oracle")),
            "broken design not detected: {failures:?}"
        );
        // The repro shrinks to a tiny trace that still mismatches.
        let ops = capture_ops(&w, &rc);
        let minimal = shrink_ops(ops.clone(), &designs, &rc, 60);
        assert!(minimal.len() < ops.len() / 4, "no shrink progress");
        let again = differential_check(
            &Workload::from_recorded(RecordedTrace::from_ops("m", minimal)),
            &designs,
            &rc,
        );
        assert!(!again.is_empty(), "shrunken repro no longer reproduces");
    }

    #[test]
    fn rv_mutants_pass_the_differential_and_the_oracle() {
        let designs = designs_from_specs([
            DesignSpec::conventional_paper(),
            DesignSpec::filtered_paper(),
            DesignSpec::samie_paper(),
        ]);
        for seed in [1u64, 7, 42] {
            let w = rv_mutant(seed, 400);
            assert!(w.cache_id().starts_with("rv:"), "{}", w.cache_id());
            let failures = differential_check(&w, &designs, &quick_rc());
            assert!(failures.is_empty(), "seed {seed}: {failures:?}");
        }
    }

    #[test]
    fn mutated_specs_always_validate() {
        let mut rng = SmallRng::seed_from_u64(123);
        for _ in 0..500 {
            mutate_spec(&mut rng).validate().unwrap();
        }
    }
}
