//! The `samie-exp serve` wire protocol: line-delimited text over TCP,
//! hand-rolled like every other format in this workspace (no serde, no
//! crates.io). An [`ExperimentRequest`]'s canonical string — already the
//! CLI's `--exp` syntax — **is** the submission payload, so anything
//! that can print a spec can talk to the server, `nc` included.
//!
//! ## Grammar
//!
//! Requests are single lines, uppercase verb first:
//!
//! ```text
//! SUBMIT [prio=high|low] design=... bench=... [seed=...] [instrs=...] [warmup=...] [cfg=...]
//! WAIT j<id>        stream progress, then rows + final status
//! STATUS j<id>      one-line phase snapshot
//! RESULT j<id>      rows + final status of a finished job
//! HEALTH            liveness + queue occupancy
//! STATS             counters + per-design wall time
//! SHUTDOWN          drain in-flight jobs, journal the rest, exit 0
//! QUIT              close this connection
//! ```
//!
//! Every response is zero or more *data lines* (first word `progress`,
//! `point` or `stat`) terminated by exactly one *status line*, which
//! starts with a 3-digit code — `2xx` success, `4xx` client error, `5xx`
//! server state — so clients read lines until the terminator:
//!
//! ```text
//! 202 accepted j7 points=4          SUBMIT queued (dedups against the store first)
//! 429 queue-full depth=64 cap=64    backpressure: resubmit later
//! 400 <reason>                      unparseable request ("did you mean" included)
//! 404 no such job j<id>             STATUS/RESULT/WAIT of an unknown id
//! 409 j<id> not finished            RESULT of a job still queued or running
//! 503 draining                      server is shutting down
//! 200 done j7 points=4 hits=3 simulated=1 dedup_waits=0 wall_ms=812
//! 500 failed j7: <reason>
//! ```
//!
//! See `docs/ARCHITECTURE.md` for the full contract (queue semantics,
//! shutdown, journal resume).

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::experiment::ExperimentRequest;

/// Default address `serve` binds and `load` dials.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7979";

/// A parsed protocol request (one line from a client).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Queue an experiment (dedup against the store first).
    Submit(ExperimentRequest),
    /// Stream progress until the job finishes, then its rows + status.
    Wait(u64),
    /// One-line phase snapshot of a job.
    Status(u64),
    /// Rows + final status of a finished job.
    Result(u64),
    /// Liveness + queue occupancy.
    Health,
    /// Counters + per-design wall time.
    Stats,
    /// Drain in-flight jobs, journal the rest, exit.
    Shutdown,
    /// Close this connection.
    Quit,
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Submit(r) => write!(f, "SUBMIT {r}"),
            Request::Wait(id) => write!(f, "WAIT j{id}"),
            Request::Status(id) => write!(f, "STATUS j{id}"),
            Request::Result(id) => write!(f, "RESULT j{id}"),
            Request::Health => f.write_str("HEALTH"),
            Request::Stats => f.write_str("STATS"),
            Request::Shutdown => f.write_str("SHUTDOWN"),
            Request::Quit => f.write_str("QUIT"),
        }
    }
}

/// Parse one request line. Errors are single-line, client-facing
/// strings (they travel back as `400` status lines verbatim).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let job = |rest: &str| -> Result<u64, String> {
        rest.strip_prefix('j')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("expected a job id like j7, got `{rest}`"))
    };
    let bare = |verb: &str, rest: &str, req: Request| -> Result<Request, String> {
        if rest.is_empty() {
            Ok(req)
        } else {
            Err(format!("{verb} takes no arguments, got `{rest}`"))
        }
    };
    match verb {
        "SUBMIT" => {
            let req: ExperimentRequest = rest.parse().map_err(|e| format!("{e}"))?;
            Ok(Request::Submit(req))
        }
        "WAIT" => Ok(Request::Wait(job(rest)?)),
        "STATUS" => Ok(Request::Status(job(rest)?)),
        "RESULT" => Ok(Request::Result(job(rest)?)),
        "HEALTH" => bare(verb, rest, Request::Health),
        "STATS" => bare(verb, rest, Request::Stats),
        "SHUTDOWN" => bare(verb, rest, Request::Shutdown),
        "QUIT" => bare(verb, rest, Request::Quit),
        "" => Err("empty request".into()),
        other => Err(format!(
            "unknown verb `{other}` (known: SUBMIT, WAIT, STATUS, RESULT, HEALTH, STATS, SHUTDOWN, QUIT)"
        )),
    }
}

/// A complete response: data lines plus the terminating status line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The 3-digit status code off the terminator line.
    pub code: u16,
    /// The full status line (including the code).
    pub status: String,
    /// The data lines that preceded it (`progress`/`point`/`stat`).
    pub data: Vec<String>,
}

impl Response {
    /// Whether the status code is 2xx.
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.code)
    }

    /// Extract `key=value` off the status line (e.g. `points`, `hits`).
    pub fn field(&self, key: &str) -> Option<&str> {
        self.status
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
    }

    /// [`field`](Self::field) parsed as a number.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key)?.parse().ok()
    }
}

/// Whether a line is a status terminator: three ASCII digits, then end
/// of line or a space.
pub fn is_status_line(line: &str) -> bool {
    let b = line.as_bytes();
    b.get(..3).is_some_and(|d| d.iter().all(u8::is_ascii_digit))
        && (b.len() == 3 || b.get(3) == Some(&b' '))
}

/// The numeric status code of a terminator line, if it is one.
fn status_code(line: &str) -> Option<u16> {
    if is_status_line(line) {
        line.get(..3)?.parse().ok()
    } else {
        None
    }
}

/// The job id off a `202 accepted j<id> ...` (or `200 done j<id> ...`)
/// status line.
pub fn job_id_from(resp: &Response) -> Option<u64> {
    resp.status
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix('j')?.parse().ok())
}

/// A client connection: writes request lines, reads framed responses.
#[derive(Debug)]
pub struct ServerConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ServerConn {
    /// Connect to a running server.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServerConn { stream, reader })
    }

    /// [`connect`](Self::connect), retrying until `timeout` — for
    /// clients racing a server that is still binding its listener.
    pub fn connect_retry(addr: &str, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Send one request and read its complete framed response. Calls
    /// `on_data` on every data line as it arrives (progress streaming);
    /// the lines are also collected into the returned [`Response`].
    pub fn request_with(
        &mut self,
        req: &Request,
        mut on_data: impl FnMut(&str),
    ) -> io::Result<Response> {
        writeln!(self.stream, "{req}")?;
        self.stream.flush()?;
        let mut data = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            let line = line.trim_end().to_string();
            if let Some(code) = status_code(&line) {
                return Ok(Response {
                    code,
                    status: line,
                    data,
                });
            }
            on_data(&line);
            data.push(line);
        }
    }

    /// [`request_with`](Self::request_with) discarding streamed lines
    /// (they still land in [`Response::data`]).
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.request_with(req, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_display() {
        let lines = [
            "SUBMIT design=conv:64 bench=gzip seed=42 instrs=1000000 warmup=200000",
            "SUBMIT prio=high design=samie:64x2x8:sh8:ab64 bench=swim seed=7 instrs=5000 warmup=100",
            "WAIT j7",
            "STATUS j0",
            "RESULT j12",
            "HEALTH",
            "STATS",
            "SHUTDOWN",
            "QUIT",
        ];
        for line in lines {
            let req = parse_request(line).unwrap();
            assert_eq!(req.to_string(), line, "canonical form is a fixed point");
            assert_eq!(parse_request(&req.to_string()).unwrap(), req);
        }
    }

    #[test]
    fn bad_requests_are_single_line_errors() {
        for (line, needle) in [
            ("", "empty request"),
            ("FROB j1", "unknown verb `FROB`"),
            ("WAIT seven", "expected a job id"),
            ("HEALTH now", "takes no arguments"),
            ("SUBMIT bench=gzip", "missing required field `design="),
            ("SUBMIT design=conv:64 bench=gziip", "did you mean `gzip`"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "`{line}`: {err}");
            assert!(!err.contains('\n'), "errors must fit a status line");
        }
    }

    #[test]
    fn status_line_detection_and_fields() {
        assert!(is_status_line("200 done j3 points=4 hits=4"));
        assert!(is_status_line("429 queue-full depth=8 cap=8"));
        assert!(is_status_line("200"));
        assert!(!is_status_line("progress j3 2000/4000"));
        assert!(!is_status_line("20x nope"));
        assert!(!is_status_line("2000 too many digits"));
        let resp = Response {
            code: 200,
            status: "200 done j3 points=4 hits=2 wall_ms=17".into(),
            data: vec![],
        };
        assert!(resp.ok());
        assert_eq!(resp.field_u64("points"), Some(4));
        assert_eq!(resp.field_u64("hits"), Some(2));
        assert_eq!(resp.field("missing"), None);
        assert_eq!(job_id_from(&resp), Some(3));
    }
}
