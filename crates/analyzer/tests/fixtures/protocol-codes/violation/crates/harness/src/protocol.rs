//! ## Grammar
//!
//! ```text
//! 200 done          success
//! 500 <reason>      server error
//! ```
