//! Emits a code nobody documented.

pub fn reply(ok: bool) -> &'static str {
    if ok {
        "200 done"
    } else {
        "418 teapot"
    }
}
