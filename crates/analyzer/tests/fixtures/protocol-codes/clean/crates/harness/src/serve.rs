//! Emits exactly the documented codes.

pub fn reply(ok: bool) -> &'static str {
    if ok {
        "200 done"
    } else {
        "400 bad request"
    }
}
