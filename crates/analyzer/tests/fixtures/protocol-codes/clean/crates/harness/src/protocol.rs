//! ## Grammar
//!
//! ```text
//! 200 done          success
//! 400 <reason>      unparseable request
//! ```
