//! Out of scope: the harness is allowed process-local hash maps.

use std::collections::HashMap;

pub fn scratch() -> HashMap<u64, u64> {
    HashMap::new()
}
