//! RandomState iteration order leaks the process seed into results.

use std::collections::HashMap;

pub fn histogram(xs: &[u64]) -> Vec<(u64, usize)> {
    let mut h = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h.into_iter().collect()
}
