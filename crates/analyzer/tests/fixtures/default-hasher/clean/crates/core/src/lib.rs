//! Deterministic containers only.

use std::collections::BTreeMap;

pub fn histogram(xs: &[u64]) -> BTreeMap<u64, usize> {
    let mut h = BTreeMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}
