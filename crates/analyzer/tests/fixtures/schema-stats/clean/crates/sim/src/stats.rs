//! The stats schema's single source of truth.

pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

pub struct SimStats {
    pub ipc: f64,
    pub cache: CacheStats,
}
