//! The store's mirror of the schema.

pub fn visit_stat_fields(s: &mut super::SimStats, mut f: impl FnMut(&str, &mut f64)) {
    macro_rules! field {
        ($name:expr, $e:expr) => {
            f($name, $e)
        };
    }
    field!("ipc", &mut s.ipc);
    field!("cache.hits", &mut (s.cache.hits as f64));
    field!("cache.misses", &mut (s.cache.misses as f64));
}
