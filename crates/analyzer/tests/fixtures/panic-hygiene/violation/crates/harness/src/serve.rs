//! Three ways a daemon dies on untrusted input.

pub fn handle(line: &str) -> u64 {
    let n: u64 = line.parse().unwrap();
    if n > 100 {
        panic!("too big");
    }
    let xs = [1u64, 2, 3];
    xs[n as usize]
}
