//! Daemon paths answer malformed input with status lines, not panics.

pub fn handle(line: &str) -> Result<u64, String> {
    match line.parse::<u64>() {
        Ok(n) => Ok(n),
        Err(e) => Err(format!("400 {e}")),
    }
}

pub fn nth(xs: &[u64], i: usize) -> Option<u64> {
    xs.get(i).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let xs = [1u64, 2];
        assert_eq!(super::handle("1").unwrap(), xs[0]);
    }
}
