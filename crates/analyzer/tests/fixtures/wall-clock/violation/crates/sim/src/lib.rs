//! A simulator that peeks at the host clock is not reproducible.

use std::time::Instant;

pub fn advance(cycle: u64) -> u64 {
    let t = Instant::now();
    let _ = t.elapsed();
    cycle + 1
}
