//! Simulated time only: cycles come from the pipeline model.

pub fn advance(cycle: u64) -> u64 {
    cycle + 1
}

#[cfg(test)]
mod tests {
    // Test code may time itself; the lint only guards simulation paths.
    use std::time::Instant;

    #[test]
    fn timing_tests_are_fine() {
        let _ = Instant::now().elapsed();
    }
}
