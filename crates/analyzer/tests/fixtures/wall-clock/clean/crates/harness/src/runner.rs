//! Whitelisted: measuring host wall time is this module's job.

use std::time::Instant;

pub fn wall_ms() -> u128 {
    Instant::now().elapsed().as_millis()
}
