//! A well-formed suppression: known lint, stated reason.

pub fn advance(cycle: u64) -> u64 {
    // samie-allow(wall-clock): this fixture exercises the allow parser, not the clock
    cycle + 1
}
