//! A suppression that names a lint that does not exist and gives no
//! reason — both are findings.

pub fn advance(cycle: u64) -> u64 {
    // samie-allow(made-up-lint):
    cycle + 1
}
