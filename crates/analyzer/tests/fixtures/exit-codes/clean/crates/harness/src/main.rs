fn run() -> i32 {
    if std::env::args().count() > 9 {
        return 2;
    }
    0
}

fn main() {
    std::process::exit(run());
}
