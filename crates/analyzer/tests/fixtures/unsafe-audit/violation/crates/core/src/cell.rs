//! Undocumented unsafety.

use std::cell::UnsafeCell;

pub struct Slot(UnsafeCell<u64>);

impl Slot {
    pub fn set(&self, v: u64) {
        unsafe { *self.0.get() = v }
    }
}
