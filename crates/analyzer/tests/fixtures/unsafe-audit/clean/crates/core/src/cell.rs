//! Documented unsafety.

use std::cell::UnsafeCell;

pub struct Slot(UnsafeCell<u64>);

impl Slot {
    pub fn set(&self, v: u64) {
        // SAFETY: Slot is !Sync, so this thread holds the only
        // reference; no aliasing write can race this one.
        unsafe { *self.0.get() = v }
    }
}
