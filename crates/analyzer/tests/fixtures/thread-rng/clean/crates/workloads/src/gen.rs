//! Every random stream derives from an explicit experiment seed.

pub fn mix(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
