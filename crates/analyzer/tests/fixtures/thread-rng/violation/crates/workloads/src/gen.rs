//! Ambient entropy makes a run unrepeatable.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
