//! Property tests for the lexer's core guarantee: nothing inside a
//! string literal or a comment ever becomes an identifier token, so no
//! lint can fire on quoted or commented-out text.

use proptest::prelude::*;

use samie_analyzer::{lex, TokKind};

/// Words every lint keys on — the worst possible payload to smuggle
/// through a literal.
const BANNED: &[&str] = &[
    "Instant",
    "SystemTime",
    "elapsed",
    "HashMap",
    "HashSet",
    "thread_rng",
    "unwrap",
    "expect",
    "panic",
    "unsafe",
];

fn banned_word() -> impl Strategy<Value = &'static str> {
    prop::sample::select(BANNED.to_vec())
}

/// Filler characters safe inside every literal kind: no quotes, no
/// backslashes, no newlines (plain `//` comments end at one), no `#`
/// (which would close an `r#"…"#` raw string early).
fn filler() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(" abcxyz019_.():;".chars().collect::<Vec<char>>()),
        0..20,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// A payload of two banned words around arbitrary filler, wrapped as
/// the *content* of one of the literal/comment forms, with real code
/// on either side to keep the lexer honest about where literals end.
fn wrapped() -> impl Strategy<Value = String> {
    (banned_word(), filler(), banned_word(), 0usize..7).prop_map(|(a, mid, b, form)| {
        let p = format!("{a}{mid}{b}");
        match form {
            0 => format!("let s = \"{p}\";"),
            1 => format!("let s = r\"{p}\";"),
            2 => format!("let s = r#\"{p}\"#;"),
            3 => format!("// {p}\nlet x = 1;"),
            4 => format!("/* {p} */ let x = 1;"),
            5 => format!("/// {p}\nfn f() {{}}"),
            _ => format!("let c = 'x'; // {p}"),
        }
    })
}

/// Arbitrary source soup: tricky fragment boundaries (quotes, raw
/// strings, lifetimes, char literals, half-open comments) butted
/// against each other in random order.
fn soup() -> impl Strategy<Value = String> {
    let fragments: Vec<&'static str> = vec![
        "\"str\"",
        "r#\"raw\"#",
        "'a",
        "'x'",
        "// line\n",
        "/* block */",
        "ident",
        "1.5e-3",
        "::",
        "..=",
        "{",
        "}",
        "'\\n'",
        "\"\"",
        "b\"bytes\"",
        "#",
        "\n",
    ];
    prop::collection::vec(prop::sample::select(fragments), 0..12).prop_map(|fs| fs.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn literals_and_comments_never_leak_identifiers(src in wrapped()) {
        for t in lex(&src) {
            if t.kind == TokKind::Ident {
                prop_assert!(
                    !BANNED.contains(&t.text.as_str()),
                    "`{}` tokenized as an identifier out of literal/comment content in {src:?}",
                    t.text
                );
            }
        }
    }

    #[test]
    fn lexing_never_panics_and_positions_stay_in_bounds(src in soup()) {
        let nlines = src.lines().count().max(1);
        for t in lex(&src) {
            prop_assert!(t.line >= 1);
            prop_assert!(t.col >= 1);
            prop_assert!(
                (t.line as usize) <= nlines,
                "token {:?} claims line {} of {}",
                t.text, t.line, nlines
            );
        }
    }

    #[test]
    fn identifiers_outside_literals_always_tokenize(words in prop::collection::vec(banned_word(), 1..6)) {
        // The flip side: the same banned words as *code* must all
        // surface as identifier tokens, or the lints would go blind.
        let src = words.join(" + ");
        let idents: Vec<String> = lex(&src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        prop_assert_eq!(idents, words);
    }
}
