//! Golden-diagnostic tests: every lint has a `clean/` tree it stays
//! silent on and a `violation/` tree whose findings must match the
//! committed `expected.txt` byte for byte — position drift in the lexer
//! or a message rewording shows up as a golden diff, not a silent
//! behavior change. The final test runs the whole catalog over this
//! repository itself: the tree the analyzer ships from must be clean.

use std::path::{Path, PathBuf};

use samie_analyzer::{analyze, lints, AnalyzeOptions};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run(root: PathBuf, lint: &str) -> Vec<String> {
    let report = analyze(&AnalyzeOptions {
        root,
        only: Some(vec![lint.to_string()]),
    })
    .expect("fixture tree analyzes");
    report.findings.iter().map(|f| f.to_string()).collect()
}

#[test]
fn every_lint_has_a_fixture_pair() {
    for spec in lints::all() {
        let dir = fixtures().join(spec.id);
        assert!(
            dir.join("clean").is_dir() && dir.join("violation").is_dir(),
            "lint `{}` is missing its clean/ or violation/ fixture tree",
            spec.id
        );
        assert!(
            dir.join("expected.txt").is_file(),
            "lint `{}` is missing its expected.txt golden",
            spec.id
        );
    }
}

#[test]
fn clean_fixtures_produce_no_findings() {
    for spec in lints::all() {
        let findings = run(fixtures().join(spec.id).join("clean"), spec.id);
        assert!(
            findings.is_empty(),
            "lint `{}` fired on its clean fixture:\n{}",
            spec.id,
            findings.join("\n")
        );
    }
}

#[test]
fn violation_fixtures_match_their_goldens() {
    for spec in lints::all() {
        let dir = fixtures().join(spec.id);
        let got = run(dir.join("violation"), spec.id).join("\n");
        let want = std::fs::read_to_string(dir.join("expected.txt"))
            .expect("golden exists")
            .trim_end()
            .to_string();
        assert!(
            !want.is_empty(),
            "lint `{}` has an empty golden — a violation fixture must trip it",
            spec.id
        );
        assert_eq!(
            got, want,
            "lint `{}` diverged from its golden (left: got, right: expected.txt)",
            spec.id
        );
    }
}

#[test]
fn allows_suppress_and_are_reported_as_suppressed() {
    // The wall-clock violation tree plus an allow on every finding line
    // must analyze clean, with the findings moved to `suppressed`.
    let dir = fixtures().join("wall-clock/violation");
    let src = std::fs::read_to_string(dir.join("crates/sim/src/lib.rs")).unwrap();
    let patched: String = src
        .lines()
        .map(|l| {
            if l.contains("Instant") || l.contains("elapsed") {
                format!("// samie-allow(wall-clock): golden-suppression test\n{l}\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let tmp = std::env::temp_dir().join("samie-analyze-allow-fixture");
    let rs = tmp.join("crates/sim/src");
    std::fs::create_dir_all(&rs).unwrap();
    std::fs::write(rs.join("lib.rs"), patched).unwrap();
    let report = analyze(&AnalyzeOptions {
        root: tmp.clone(),
        only: Some(vec!["wall-clock".to_string()]),
    })
    .unwrap();
    std::fs::remove_dir_all(&tmp).ok();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 3, "{:?}", report.suppressed);
}

#[test]
fn the_repository_itself_is_clean() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = analyze(&AnalyzeOptions {
        root: repo,
        only: None,
    })
    .expect("repo tree analyzes");
    assert!(
        report.findings.is_empty(),
        "the shipped tree must pass its own lints:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "walked the real workspace");
}
