//! `samie-analyze` — run the repo-specific lints over the workspace.
//!
//! ```text
//! samie-analyze [--root DIR] [--lints id,id,...] [--json PATH]
//!               [--deny-all] [--list] [--quiet]
//! ```
//!
//! Exit codes: `0` clean (or findings without `--deny-all`), `1`
//! findings under `--deny-all`, `2` usage or I/O error. The CI
//! `analyze` job runs `--deny-all` and uploads `ANALYZE_report.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use samie_analyzer::{analyze, lints, render_json, AnalyzeOptions};

struct Cli {
    root: Option<PathBuf>,
    only: Option<Vec<String>>,
    json: Option<PathBuf>,
    deny_all: bool,
    list: bool,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: samie-analyze [--root DIR] [--lints id,id,...] [--json PATH] [--deny-all] [--list] [--quiet]"
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        only: None,
        json: None,
        deny_all: false,
        list: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => cli.root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?)),
            "--lints" => {
                cli.only = Some(
                    it.next()
                        .ok_or("--lints needs a comma-separated id list")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--json" => cli.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?)),
            "--deny-all" => cli.deny_all = true,
            "--list" => cli.list = true,
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(cli)
}

/// Walk upward from the current directory to the workspace root (the
/// directory holding both `Cargo.toml` and `ROADMAP.md`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("ROADMAP.md").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if cli.list {
        for l in lints::all() {
            println!("{:<16} {}", l.id, l.summary);
        }
        return ExitCode::SUCCESS;
    }
    let Some(root) = cli.root.or_else(find_root) else {
        eprintln!("samie-analyze: cannot find the workspace root (pass --root)");
        return ExitCode::from(2);
    };
    let opts = AnalyzeOptions {
        root: root.clone(),
        only: cli.only,
    };
    let report = match analyze(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("samie-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let json_path = cli.json.unwrap_or_else(|| root.join("ANALYZE_report.json"));
    if let Err(e) = std::fs::write(&json_path, render_json(&report)) {
        eprintln!("samie-analyze: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    if !cli.quiet {
        // Tolerate a closed pipe (`samie-analyze | head`): the report
        // file already landed, stdout is best-effort.
        use std::io::Write;
        let stdout = std::io::stdout();
        let mut w = stdout.lock();
        for f in &report.findings {
            let _ = writeln!(w, "{f}");
        }
        let _ = writeln!(
            w,
            "samie-analyze: {} finding(s), {} suppressed, {} files, {} lints -> {}",
            report.findings.len(),
            report.suppressed.len(),
            report.files_scanned,
            report.lints_run.len(),
            json_path.display()
        );
    }
    if cli.deny_all && !report.findings.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
