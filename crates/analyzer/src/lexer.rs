//! A minimal Rust lexer — just enough token structure for lints to tell
//! code from comments, string/char literals and lifetimes, so a banned
//! identifier inside `"a string"` or `// a comment` never fires.
//!
//! It is deliberately not a full grammar: tokens are comments, string
//! literals (plain, raw, byte), char literals (disambiguated from
//! lifetimes), numbers, identifiers and single-character punctuation.
//! Multi-character operators arrive as separate punctuation tokens
//! (`::` is `:` `:`), which is all the pattern matching in
//! [`crate::lints`] needs.

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// String literal, quotes included (plain, raw or byte).
    Str,
    /// Char or byte-char literal, quotes included.
    Char,
    /// Lifetime (`'a`, `'static`) — the leading quote is not a char.
    Lifetime,
    /// One punctuation character.
    Punct,
    /// Line or block comment, markers included.
    Comment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one character, tracking line/column.
    fn bump(&mut self) -> char {
        let c = self.chars[self.i];
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn take_while(&mut self, buf: &mut String, f: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&f) {
            buf.push(self.bump());
        }
    }

    /// Consume a `"…"` body (opening quote already taken), honouring
    /// backslash escapes.
    fn quoted_body(&mut self, buf: &mut String) {
        while let Some(c) = self.peek(0) {
            buf.push(self.bump());
            if c == '\\' && self.peek(0).is_some() {
                buf.push(self.bump());
            } else if c == '"' {
                return;
            }
        }
    }

    /// Consume a raw-string body: `#…#"…"#…#` with `hashes` delimiters
    /// (the leading hashes and quote are consumed here).
    fn raw_body(&mut self, buf: &mut String) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            buf.push(self.bump());
            hashes += 1;
        }
        if self.peek(0) == Some('"') {
            buf.push(self.bump());
        }
        while self.peek(0).is_some() {
            let c = self.bump();
            buf.push(c);
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    buf.push(self.bump());
                }
                return;
            }
        }
    }

    /// Whether a raw string starts at the current position (`r"`/`r#`,
    /// with the `r`/`br` prefix already consumed by the caller's check).
    fn at_raw_delim(&self, ahead: usize) -> bool {
        let mut k = ahead;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }
}

/// Lex `src` into tokens (comments included, whitespace dropped).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let (line, col) = (lx.line, lx.col);
        let mut text = String::new();
        let kind = if c == '/' && lx.peek(1) == Some('/') {
            text.push(lx.bump());
            text.push(lx.bump());
            lx.take_while(&mut text, |c| c != '\n');
            TokKind::Comment
        } else if c == '/' && lx.peek(1) == Some('*') {
            text.push(lx.bump());
            text.push(lx.bump());
            let mut depth = 1usize;
            while depth > 0 && lx.peek(0).is_some() {
                if lx.peek(0) == Some('/') && lx.peek(1) == Some('*') {
                    text.push(lx.bump());
                    text.push(lx.bump());
                    depth += 1;
                } else if lx.peek(0) == Some('*') && lx.peek(1) == Some('/') {
                    text.push(lx.bump());
                    text.push(lx.bump());
                    depth -= 1;
                } else {
                    text.push(lx.bump());
                }
            }
            TokKind::Comment
        } else if (c == 'r' && lx.at_raw_delim(1))
            || (c == 'b' && lx.peek(1) == Some('r') && lx.at_raw_delim(2))
        {
            text.push(lx.bump());
            if text == "b" {
                text.push(lx.bump());
            }
            lx.raw_body(&mut text);
            TokKind::Str
        } else if c == 'b' && lx.peek(1) == Some('"') {
            text.push(lx.bump());
            text.push(lx.bump());
            lx.quoted_body(&mut text);
            TokKind::Str
        } else if c == 'b' && lx.peek(1) == Some('\'') {
            text.push(lx.bump());
            text.push(lx.bump());
            char_body(&mut lx, &mut text);
            TokKind::Char
        } else if c == '"' {
            text.push(lx.bump());
            lx.quoted_body(&mut text);
            TokKind::Str
        } else if c == '\'' {
            // `'x'` (and `'\n'`) are char literals; `'a` in `&'a str` is
            // a lifetime. An escape or a closing quote two ahead means
            // char; otherwise it is a lifetime.
            if lx.peek(1) == Some('\\') || (lx.peek(2) == Some('\'') && lx.peek(1) != Some('\'')) {
                text.push(lx.bump());
                char_body(&mut lx, &mut text);
                TokKind::Char
            } else {
                text.push(lx.bump());
                lx.take_while(&mut text, is_ident_continue);
                TokKind::Lifetime
            }
        } else if is_ident_start(c) {
            lx.take_while(&mut text, is_ident_continue);
            TokKind::Ident
        } else if c.is_ascii_digit() {
            lx.take_while(&mut text, is_ident_continue);
            // Float continuation: `1.5`, `1.5e-3` (but not `0..3` or
            // `8.max(1)` — only a digit may follow the dot).
            if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                text.push(lx.bump());
                lx.take_while(&mut text, is_ident_continue);
            }
            TokKind::Num
        } else {
            text.push(lx.bump());
            TokKind::Punct
        };
        out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    out
}

/// Consume a char-literal body after the opening quote: one (possibly
/// escaped) character, then the closing quote.
fn char_body(lx: &mut Lexer, text: &mut String) {
    if lx.peek(0) == Some('\\') {
        text.push(lx.bump());
        if lx.peek(0).is_some() {
            text.push(lx.bump());
        }
        // `\u{…}` escapes carry a braced payload.
        if lx.peek(0) == Some('{') {
            while lx.peek(0).is_some_and(|c| c != '\'') {
                text.push(lx.bump());
            }
        }
    } else if lx.peek(0).is_some() {
        text.push(lx.bump());
    }
    if lx.peek(0) == Some('\'') {
        text.push(lx.bump());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_inside_literals_and_comments_never_tokenize() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in /* a nested */ block */
            fn f() {
                let s = "thread_rng HashMap";
                let r = r#"unsafe "quoted" unwrap"#;
                let c = 'H';
            }
        "##;
        let idents: Vec<String> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["fn", "f", "let", "s", "let", "r", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
        let toks = kinds(r"let nl = '\n'; let q = '\''; let s: &'static str;");
        assert!(toks.contains(&(TokKind::Char, r"'\n'".into())));
        assert!(toks.contains(&(TokKind::Char, r"'\''".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "'static".into())));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab cd\n  ef");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 4));
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes() {
        let toks = kinds(r###"let x = r##"say "hi"# ok"## + 1;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("say")));
        assert!(toks.contains(&(TokKind::Num, "1".into())));
    }

    #[test]
    fn numbers_do_not_eat_range_or_method_dots() {
        assert!(kinds("0..3").contains(&(TokKind::Num, "0".into())));
        assert!(kinds("1.5e-3").contains(&(TokKind::Num, "1.5e".into())));
        assert!(kinds("0xff_u64").contains(&(TokKind::Num, "0xff_u64".into())));
    }
}
