//! `samie-analyze` — repo-specific static analysis for the SAMIE-LSQ
//! reproduction.
//!
//! Clippy checks Rust; this crate checks *this repository*: the
//! determinism, panic-hygiene and cross-file schema invariants that
//! every reproduction claim (bit-identical replay, byte-identical
//! stores, a daemon that survives malformed input) rests on. The
//! engine is a small hand-rolled lexer ([`lexer`]) feeding a set of
//! lints ([`lints`]); there are no dependencies, like everywhere else
//! in the workspace.
//!
//! Findings carry `file:line:col`, a lint id and a severity, and are
//! suppressible per site with an inline escape hatch:
//!
//! ```text
//! // samie-allow(lint-id): reason the invariant is upheld anyway
//! ```
//!
//! which covers the comment's own line and the next code line. An
//! allow without a reason is itself a finding — suppressions must be
//! auditable. The full catalog lives in `docs/ARCHITECTURE.md`.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod lints;

pub use lexer::{lex, TokKind, Token};

/// How bad a finding is. Every current lint is `Error` — the gate
/// (`--deny-all`, CI) fails on anything — but the report keeps the
/// distinction so advisory lints can be added without retooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory.
    Warning,
    /// Invariant violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint id, e.g. `wall-clock`.
    pub lint: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.file, self.line, self.col, self.severity, self.lint, self.message
        )
    }
}

/// A parsed `samie-allow(id, …): reason` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment sits on.
    pub line: u32,
    /// The next line after `line` holding a non-comment token — an
    /// allow above a statement covers that statement.
    pub covers: u32,
    /// Lint ids the directive suppresses.
    pub ids: Vec<String>,
    /// Justification (required).
    pub reason: String,
}

/// One lexed source file plus the per-line facts lints ask about.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub rel: String,
    /// Raw text.
    pub text: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// `samie-allow` directives found in comments.
    pub allows: Vec<Allow>,
    /// Whether the file as a whole is test code (under a `tests/`
    /// directory or a `*_tests.rs` module).
    pub is_test_path: bool,
    /// Per-line flag: inside a `#[cfg(test)]` / `#[test]` item.
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Lex `text` as the file `rel` (no filesystem access — tests and
    /// property checks build files in memory).
    pub fn from_source(rel: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let nlines = text.lines().count() + 1;
        let test_lines = mark_test_lines(&tokens, nlines);
        let allows = parse_allows(&tokens);
        let is_test_path = rel.split('/').any(|seg| seg == "tests" || seg == "benches")
            || Path::new(rel)
                .file_stem()
                .and_then(|s| s.to_str())
                .is_some_and(|s| s.ends_with("_tests"));
        SourceFile {
            rel: rel.to_string(),
            text,
            tokens,
            allows,
            is_test_path,
            test_lines,
        }
    }

    /// Whether `line` is inside test code (file-level or `#[cfg(test)]`).
    pub fn in_test_code(&self, line: u32) -> bool {
        self.is_test_path || self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Whether a finding of `lint` at `line` is suppressed by an allow.
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.covers == line) && a.ids.iter().any(|id| id == lint))
    }
}

/// Mark the lines covered by `#[cfg(test)]` / `#[test]` items: from the
/// attribute to the closing brace of the item it decorates (or its
/// terminating semicolon for brace-less items).
fn mark_test_lines(tokens: &[Token], nlines: usize) -> Vec<bool> {
    let mut mask = vec![false; nlines + 2];
    let toks: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
    let mut i = 0;
    while i < toks.len() {
        let is_test_attr = text(i) == "#"
            && text(i + 1) == "["
            && ((text(i + 2) == "test" && text(i + 3) == "]")
                || (text(i + 2) == "cfg"
                    && text(i + 3) == "("
                    && text(i + 4) == "test"
                    && text(i + 5) == ")"
                    && text(i + 6) == "]"));
        if !is_test_attr {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Walk to the item body: the first `{` opens it (match braces to
        // its close); a `;` first means a brace-less item.
        let mut j = i + 1;
        let mut end_line = start_line;
        while j < toks.len() {
            match text(j) {
                "{" => {
                    let mut depth = 1usize;
                    j += 1;
                    while j < toks.len() && depth > 0 {
                        match text(j) {
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    end_line = toks
                        .get(j.saturating_sub(1))
                        .map(|t| t.line)
                        .unwrap_or(start_line);
                    break;
                }
                ";" => {
                    end_line = toks[j].line;
                    break;
                }
                _ => j += 1,
            }
        }
        for l in start_line..=end_line {
            if let Some(slot) = mask.get_mut(l as usize) {
                *slot = true;
            }
        }
        i = j.max(i + 1);
    }
    mask
}

/// Extract `samie-allow(id, …): reason` directives from comment tokens.
/// Only plain `//` comments count — doc comments merely *describe* the
/// mechanism (this very file does) and must not suppress anything. A
/// missing reason is reported later by the `samie-allow` meta-lint —
/// here it parses with an empty reason.
fn parse_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (k, tok) in tokens.iter().enumerate() {
        if tok.kind != TokKind::Comment
            || !tok.text.starts_with("//")
            || tok.text.starts_with("///")
            || tok.text.starts_with("//!")
        {
            continue;
        }
        let Some(at) = tok.text.find("samie-allow(") else {
            continue;
        };
        let rest = &tok.text[at + "samie-allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let ids: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let reason = rest[close + 1..]
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        let covers = tokens[k + 1..]
            .iter()
            .find(|t| t.kind != TokKind::Comment && t.line > tok.line)
            .map(|t| t.line)
            .unwrap_or(tok.line);
        out.push(Allow {
            line: tok.line,
            covers,
            ids,
            reason,
        });
    }
    out
}

/// Everything the lints look at: the lexed Rust tree plus access to the
/// repo's Markdown files.
pub struct Ctx {
    /// Analysis root (the workspace root, or a fixture tree in tests).
    pub root: PathBuf,
    /// Lexed Rust files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Ctx {
    /// Walk and lex every `.rs` file under `root`, skipping `target/`,
    /// `vendor/`, `.git/` and the analyzer's own fixture corpus.
    pub fn load(root: &Path) -> io::Result<Ctx> {
        let mut files = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let entries = match fs::read_dir(&dir) {
                Ok(e) => e,
                Err(_) => continue,
            };
            for e in entries.flatten() {
                let p = e.path();
                let name = e.file_name();
                let name = name.to_string_lossy();
                if p.is_dir() {
                    if name == "target" || name == "vendor" || name == ".git" || name == "fixtures"
                    {
                        continue;
                    }
                    stack.push(p);
                } else if p.extension().is_some_and(|x| x == "rs") {
                    let rel = p
                        .strip_prefix(root)
                        .unwrap_or(&p)
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy().into_owned())
                        .collect::<Vec<_>>()
                        .join("/");
                    let text = fs::read_to_string(&p)?;
                    files.push(SourceFile::from_source(&rel, text));
                }
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Ctx {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Build a context from in-memory files (for tests).
    pub fn from_files(files: Vec<SourceFile>) -> Ctx {
        Ctx {
            root: PathBuf::new(),
            files,
        }
    }

    /// The lexed file at a repo-relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Read a Markdown (or any text) file relative to the root.
    pub fn read_text(&self, rel: &str) -> Option<String> {
        fs::read_to_string(self.root.join(rel)).ok()
    }
}

/// What to analyze.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Analysis root.
    pub root: PathBuf,
    /// If set, run only these lint ids.
    pub only: Option<Vec<String>>,
}

/// The outcome of one analysis run.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, col, lint).
    pub findings: Vec<Finding>,
    /// Findings suppressed by a `samie-allow`, same order.
    pub suppressed: Vec<Finding>,
    /// Number of Rust files scanned.
    pub files_scanned: usize,
    /// Ids of the lints that ran.
    pub lints_run: Vec<&'static str>,
}

/// Run the analysis.
pub fn analyze(opts: &AnalyzeOptions) -> io::Result<Report> {
    let ctx = Ctx::load(&opts.root)?;
    let selected = |id: &str| match &opts.only {
        Some(ids) => ids.iter().any(|x| x == id),
        None => true,
    };
    let mut raw = Vec::new();
    let mut lints_run = Vec::new();
    for spec in lints::all() {
        if selected(spec.id) {
            lints_run.push(spec.id);
            (spec.run)(&ctx, &mut raw);
        }
    }
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        let is_allowed = ctx
            .file(&f.file)
            .is_some_and(|sf| sf.allowed(f.lint, f.line));
        if is_allowed {
            suppressed.push(f);
        } else {
            findings.push(f);
        }
    }
    let key = |f: &Finding| (f.file.clone(), f.line, f.col, f.lint);
    findings.sort_by_key(key);
    suppressed.sort_by_key(key);
    Ok(Report {
        findings,
        suppressed,
        files_scanned: ctx.files.len(),
        lints_run,
    })
}

/// Render the report as `ANALYZE_report.json` (hand-rolled JSON, like
/// every other format in this workspace).
pub fn render_json(report: &Report) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn finding(f: &Finding) -> String {
        format!(
            "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            f.lint,
            f.severity,
            esc(&f.file),
            f.line,
            f.col,
            esc(&f.message)
        )
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"samie-analyze-v1\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"lints_run\": [{}],\n",
        report
            .lints_run
            .iter()
            .map(|id| format!("\"{id}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (name, list) in [
        ("findings", &report.findings),
        ("suppressed", &report.suppressed),
    ] {
        out.push_str(&format!("  \"{name}\": [\n"));
        out.push_str(&list.iter().map(finding).collect::<Vec<_>>().join(",\n"));
        if !list.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");
    }
    out.push_str(&format!("  \"total\": {}\n", report.findings.len()));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_covers_its_line_and_the_next_code_line() {
        let src = "\
// samie-allow(wall-clock): timing the outside world is this file's job
let t = Instant::now();
let u = Instant::now();
";
        let f = SourceFile::from_source("x.rs", src.to_string());
        assert!(f.allowed("wall-clock", 1));
        assert!(f.allowed("wall-clock", 2));
        assert!(!f.allowed("wall-clock", 3));
        assert!(!f.allowed("default-hasher", 2));
        assert_eq!(
            f.allows[0].reason,
            "timing the outside world is this file's job"
        );
    }

    #[test]
    fn cfg_test_items_are_marked_as_test_code() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {}
}
fn live_again() {}
";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_string());
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(5));
        assert!(f.in_test_code(6));
        assert!(!f.in_test_code(7));
    }

    #[test]
    fn tests_dirs_are_test_paths() {
        let f = SourceFile::from_source("crates/x/tests/props.rs", String::new());
        assert!(f.is_test_path);
        assert!(f.in_test_code(1));
        let g = SourceFile::from_source("crates/sim/src/pipeline_tests.rs", String::new());
        assert!(g.is_test_path);
        let h = SourceFile::from_source("crates/x/src/lib.rs", String::new());
        assert!(!h.is_test_path);
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let report = Report {
            findings: vec![Finding {
                lint: "wall-clock",
                severity: Severity::Error,
                file: "a.rs".into(),
                line: 3,
                col: 9,
                message: "uses \"Instant\"".into(),
            }],
            suppressed: vec![],
            files_scanned: 1,
            lints_run: vec!["wall-clock"],
        };
        let json = render_json(&report);
        assert!(json.contains("\"samie-analyze-v1\""));
        assert!(json.contains("\\\"Instant\\\""));
        assert!(json.contains("\"total\": 1"));
    }
}
