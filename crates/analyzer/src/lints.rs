//! The lint catalog. Each lint is a plain function over the lexed tree
//! ([`Ctx`]); the table in `docs/ARCHITECTURE.md` documents the
//! invariant behind every id.
//!
//! Scoping conventions:
//!
//! * *Deterministic crates* — `isa`, `mem`, `core`, `sim`, `energy`,
//!   `workloads`, `store`, `riscv` — may not observe wall-clock time or iterate
//!   seed-dependent hash maps; the harness's timing modules are the
//!   explicit whitelist.
//! * *Daemon files* — `serve.rs`, `protocol.rs`, `store.rs` — may not
//!   panic on untrusted input: no `unwrap`/`expect`/`panic!`/indexing
//!   outside `#[cfg(test)]`.
//! * Schema lints cross-check one source of truth against its mirrors
//!   (stats schema, protocol status codes, CLI exit codes, doc links).

use std::collections::{BTreeMap, BTreeSet};

use crate::{Ctx, Finding, Severity, SourceFile, TokKind, Token};

/// One registered lint.
pub struct LintSpec {
    /// Stable id, used in diagnostics and `samie-allow(...)`.
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// One-line invariant statement.
    pub summary: &'static str,
    /// The checker.
    pub run: fn(&Ctx, &mut Vec<Finding>),
}

/// Every lint, in catalog order.
pub fn all() -> &'static [LintSpec] {
    &[
        LintSpec {
            id: "wall-clock",
            severity: Severity::Error,
            summary: "no Instant/SystemTime/elapsed outside the harness timing whitelist",
            run: wall_clock,
        },
        LintSpec {
            id: "default-hasher",
            severity: Severity::Error,
            summary: "no seed-dependent HashMap/HashSet in deterministic crates",
            run: default_hasher,
        },
        LintSpec {
            id: "thread-rng",
            severity: Severity::Error,
            summary: "no ambient randomness anywhere",
            run: ambient_randomness,
        },
        LintSpec {
            id: "panic-hygiene",
            severity: Severity::Error,
            summary: "no unwrap/expect/panic!/indexing in daemon and store request paths",
            run: panic_hygiene,
        },
        LintSpec {
            id: "unsafe-audit",
            severity: Severity::Error,
            summary: "every unsafe carries a // SAFETY: comment",
            run: unsafe_audit,
        },
        LintSpec {
            id: "schema-stats",
            severity: Severity::Error,
            summary: "every SimStats counter appears in visit_stat_fields, and nothing else does",
            run: schema_stats,
        },
        LintSpec {
            id: "protocol-codes",
            severity: Severity::Error,
            summary: "status codes agree between serve.rs, protocol.rs and ARCHITECTURE.md",
            run: protocol_codes,
        },
        LintSpec {
            id: "exit-codes",
            severity: Severity::Error,
            summary: "CLI exit codes in main.rs match docs/REPRODUCING.md",
            run: exit_codes,
        },
        LintSpec {
            id: "doc-links",
            severity: Severity::Error,
            summary: "intra-repo Markdown links resolve",
            run: doc_links,
        },
        LintSpec {
            id: "samie-allow",
            severity: Severity::Error,
            summary: "every suppression names known lints and gives a reason",
            run: allow_hygiene,
        },
    ]
}

/// Crates whose results must be bit-identical across runs and hosts.
const DETERMINISTIC_CRATES: &[&str] = &[
    "isa",
    "mem",
    "core",
    "sim",
    "energy",
    "workloads",
    "store",
    "riscv",
];

/// Harness modules whose *job* is measuring host wall time (cold/warm
/// speedups, serve uptime, load latency, connect deadlines).
const WALL_CLOCK_WHITELIST: &[&str] = &[
    "crates/harness/src/runner.rs",
    "crates/harness/src/load.rs",
    "crates/harness/src/serve.rs",
    "crates/harness/src/sweep.rs",
    "crates/harness/src/report.rs",
    "crates/harness/src/protocol.rs",
];

/// Files that answer untrusted input and therefore must not panic.
const PANIC_FREE_FILES: &[&str] = &[
    "crates/harness/src/serve.rs",
    "crates/harness/src/protocol.rs",
    "crates/store/src/store.rs",
];

fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

fn push(
    out: &mut Vec<Finding>,
    lint: &'static str,
    file: &str,
    line: u32,
    col: u32,
    message: String,
) {
    out.push(Finding {
        lint,
        severity: Severity::Error,
        file: file.to_string(),
        line,
        col,
        message,
    });
}

/// Iterate the non-comment tokens of the non-test lines of a file.
fn code_tokens(f: &SourceFile) -> impl Iterator<Item = &Token> {
    f.tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .filter(|t| !f.in_test_code(t.line))
}

// ---------------------------------------------------------------- determinism

fn wall_clock(ctx: &Ctx, out: &mut Vec<Finding>) {
    for f in &ctx.files {
        if !f.rel.starts_with("crates/")
            || WALL_CLOCK_WHITELIST.contains(&f.rel.as_str())
            || f.is_test_path
        {
            continue;
        }
        for t in code_tokens(f) {
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "Instant" | "SystemTime" | "elapsed")
            {
                push(
                    out,
                    "wall-clock",
                    &f.rel,
                    t.line,
                    t.col,
                    format!(
                        "`{}` reads host wall-clock time outside the harness timing \
                         whitelist; simulated time must come from the simulator",
                        t.text
                    ),
                );
            }
        }
    }
}

fn default_hasher(ctx: &Ctx, out: &mut Vec<Finding>) {
    for f in &ctx.files {
        let in_scope = crate_of(&f.rel).is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
        if !in_scope {
            continue;
        }
        // Test code is in scope too: iteration order leaking into an
        // assertion makes a test seed-dependent.
        for t in f.tokens.iter().filter(|t| t.kind != TokKind::Comment) {
            if t.kind == TokKind::Ident && matches!(t.text.as_str(), "HashMap" | "HashSet") {
                push(
                    out,
                    "default-hasher",
                    &f.rel,
                    t.line,
                    t.col,
                    format!(
                        "`{}` iterates in RandomState (per-process seed) order; use \
                         trace_isa::U64Map / FastU64Hasher or a BTreeMap/BTreeSet",
                        t.text
                    ),
                );
            }
        }
    }
}

fn ambient_randomness(ctx: &Ctx, out: &mut Vec<Finding>) {
    for f in &ctx.files {
        for t in f.tokens.iter().filter(|t| t.kind != TokKind::Comment) {
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "thread_rng" | "ThreadRng" | "from_entropy" | "OsRng"
                )
            {
                push(
                    out,
                    "thread-rng",
                    &f.rel,
                    t.line,
                    t.col,
                    format!(
                        "`{}` is ambient randomness; every random stream must be \
                         derived from an explicit experiment seed",
                        t.text
                    ),
                );
            }
        }
    }
}

// -------------------------------------------------------------- panic hygiene

/// Keywords that can directly precede an array literal's `[`.
fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "in" | "return" | "break" | "if" | "else" | "match" | "mut" | "ref" | "move" | "as"
    )
}

fn panic_hygiene(ctx: &Ctx, out: &mut Vec<Finding>) {
    for f in &ctx.files {
        if !PANIC_FREE_FILES.contains(&f.rel.as_str()) {
            continue;
        }
        let toks: Vec<&Token> = code_tokens(f).collect();
        for (k, t) in toks.iter().enumerate() {
            let prev = k
                .checked_sub(1)
                .map(|p| toks[p].text.as_str())
                .unwrap_or("");
            let next = toks.get(k + 1).map(|n| n.text.as_str()).unwrap_or("");
            let bad = match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "unwrap" | "expect") if prev == "." && next == "(" => {
                    Some(format!(
                        "`.{}()` can panic; surface a 4xx/500 protocol error or recover",
                        t.text
                    ))
                }
                (TokKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented")
                    if next == "!" =>
                {
                    Some(format!(
                        "`{}!` kills the worker thread; daemon paths must return errors",
                        t.text
                    ))
                }
                // An `[` after an identifier (or a close bracket) is an
                // index expression — except after keywords like `in` or
                // `return`, where it opens an array literal instead.
                (TokKind::Punct, "[")
                    if toks
                        .get(k.checked_sub(1).unwrap_or(usize::MAX))
                        .is_some_and(|p| {
                            (p.kind == TokKind::Ident && !is_keyword(&p.text))
                                || p.text == ")"
                                || p.text == "]"
                        }) =>
                {
                    Some("indexing panics on out-of-range untrusted input; use .get()".to_string())
                }
                _ => None,
            };
            if let Some(message) = bad {
                push(out, "panic-hygiene", &f.rel, t.line, t.col, message);
            }
        }
    }
}

// --------------------------------------------------------------- unsafe audit

fn unsafe_audit(ctx: &Ctx, out: &mut Vec<Finding>) {
    for f in &ctx.files {
        for t in f.tokens.iter() {
            if t.kind != TokKind::Ident || t.text != "unsafe" {
                continue;
            }
            let documented = f.tokens.iter().any(|c| {
                c.kind == TokKind::Comment
                    && c.text.contains("SAFETY:")
                    && c.line <= t.line
                    && c.line + 5 >= t.line
            });
            if !documented {
                push(
                    out,
                    "unsafe-audit",
                    &f.rel,
                    t.line,
                    t.col,
                    "`unsafe` without a `// SAFETY:` comment in the 5 lines above".to_string(),
                );
            }
        }
    }
}

// ------------------------------------------------------------- schema: stats

/// Struct definitions the stats schema is spelled out in.
const STAT_STRUCTS: &[&str] = &[
    "SimStats",
    "CacheStats",
    "LsqActivity",
    "CamActivity",
    "OccupancyIntegrals",
];

/// A struct's fields as `(field name, first type identifier)` pairs.
type FieldList = Vec<(String, String)>;

/// Parse `pub struct Name { pub field: Ty, … }` definitions out of a
/// file (non-test code only). Returns `name -> [(field, first type
/// ident)]`.
fn parse_structs(f: &SourceFile) -> Vec<(String, FieldList, u32)> {
    let toks: Vec<&Token> = code_tokens(f).collect();
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(text(i) == "struct" && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)) {
            i += 1;
            continue;
        }
        let name = text(i + 1).to_string();
        let line = toks[i + 1].line;
        // Find the body (skip to `{`; a `;` first means unit/tuple).
        let mut j = i + 2;
        while j < toks.len() && text(j) != "{" && text(j) != ";" {
            j += 1;
        }
        if text(j) != "{" {
            i = j;
            continue;
        }
        let mut fields = Vec::new();
        let mut depth = 1usize;
        j += 1;
        while j < toks.len() && depth > 0 {
            match text(j) {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                "pub"
                    if depth == 1
                        && toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Ident)
                        && text(j + 2) == ":" =>
                {
                    let field = text(j + 1).to_string();
                    // First identifier of the type.
                    let mut k = j + 3;
                    while k < toks.len()
                        && toks[k].kind != TokKind::Ident
                        && text(k) != ","
                        && text(k) != "}"
                    {
                        k += 1;
                    }
                    let ty = if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident) {
                        text(k).to_string()
                    } else {
                        String::new()
                    };
                    fields.push((field, ty));
                    j = k;
                }
                _ => {}
            }
            j += 1;
        }
        out.push((name, fields, line));
        i = j;
    }
    out
}

fn schema_stats(ctx: &Ctx, out: &mut Vec<Finding>) {
    // Gather the struct definitions (wherever they live) …
    let mut table: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for f in ctx.files.iter().filter(|f| !f.is_test_path) {
        for (name, fields, _) in parse_structs(f) {
            if STAT_STRUCTS.contains(&name.as_str()) {
                table.entry(name).or_insert(fields);
            }
        }
    }
    // … and the file holding the schema visitor.
    let entry = ctx.files.iter().find(|f| {
        code_tokens(f).any(|t| t.kind == TokKind::Ident && t.text == "visit_stat_fields")
            && code_tokens(f).any(|t| t.kind == TokKind::Ident && t.text == "field")
    });
    let (Some(simstats), Some(entry)) = (table.get("SimStats"), entry) else {
        return; // nothing to cross-check in this tree
    };

    // Expand SimStats into dotted leaf counter names.
    fn expand(
        prefix: &str,
        fields: &[(String, String)],
        table: &BTreeMap<String, Vec<(String, String)>>,
        leaves: &mut BTreeSet<String>,
    ) {
        for (field, ty) in fields {
            let name = if prefix.is_empty() {
                field.clone()
            } else {
                format!("{prefix}.{field}")
            };
            if let Some(sub) = table.get(ty) {
                expand(&name, sub, table, leaves);
            } else {
                leaves.insert(name);
            }
        }
    }
    let mut expected = BTreeSet::new();
    expand("", simstats, &table, &mut expected);

    // field!("name", …) occurrences in the visitor file.
    let toks: Vec<&Token> = entry
        .tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut declared: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    for k in 0..toks.len() {
        if toks[k].text == "field"
            && toks.get(k + 1).is_some_and(|t| t.text == "!")
            && toks.get(k + 2).is_some_and(|t| t.text == "(")
            && toks.get(k + 3).is_some_and(|t| t.kind == TokKind::Str)
        {
            let name = toks[k + 3].text.trim_matches('"').to_string();
            declared
                .entry(name)
                .or_insert((toks[k + 3].line, toks[k + 3].col));
        }
    }
    let anchor = code_tokens(entry)
        .find(|t| t.text == "visit_stat_fields")
        .map(|t| (t.line, t.col))
        .unwrap_or((1, 1));
    for name in expected.iter() {
        if !declared.contains_key(name) {
            push(
                out,
                "schema-stats",
                &entry.rel,
                anchor.0,
                anchor.1,
                format!("SimStats counter `{name}` is missing from visit_stat_fields — it would silently not be stored"),
            );
        }
    }
    for (name, (line, col)) in &declared {
        if !expected.contains(name) {
            push(
                out,
                "schema-stats",
                &entry.rel,
                *line,
                *col,
                format!("schema field `{name}` does not correspond to any SimStats counter"),
            );
        }
    }
}

// ---------------------------------------------------- schema: protocol codes

fn status_code_of(s: &str) -> Option<&str> {
    let code = s.get(..3)?;
    if code.chars().all(|c| c.is_ascii_digit())
        && matches!(code.as_bytes()[0], b'2' | b'4' | b'5')
        && s[3..].chars().next().map(|c| c == ' ').unwrap_or(true)
    {
        Some(code)
    } else {
        None
    }
}

fn protocol_codes(ctx: &Ctx, out: &mut Vec<Finding>) {
    let Some(serve) = ctx.files.iter().find(|f| f.rel.ends_with("src/serve.rs")) else {
        return;
    };
    // Codes the server actually emits: string literals starting with a
    // 3-digit status code, outside tests.
    let mut emitted: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    for t in code_tokens(serve) {
        if t.kind != TokKind::Str {
            continue;
        }
        let inner = t.text.trim_start_matches(['b', 'r', '#']).trim_matches('"');
        if let Some(code) = status_code_of(inner) {
            emitted.entry(code.to_string()).or_insert((t.line, t.col));
        }
    }

    // Codes the protocol module documents (comment lines beginning with
    // a status code, e.g. the grammar's response examples).
    let proto = ctx
        .files
        .iter()
        .find(|f| f.rel.ends_with("src/protocol.rs"));
    let mut proto_doc: BTreeMap<String, u32> = BTreeMap::new();
    if let Some(p) = proto {
        for t in p.tokens.iter().filter(|t| t.kind == TokKind::Comment) {
            for (off, line) in t.text.lines().enumerate() {
                let body = line.trim_start_matches(['/', '!', '*']).trim_start();
                if let Some(code) = status_code_of(body) {
                    proto_doc
                        .entry(code.to_string())
                        .or_insert(t.line + off as u32);
                }
            }
        }
    }

    // Codes ARCHITECTURE.md documents: backtick spans starting with a
    // code, plus fenced example lines.
    let arch = ctx.read_text("docs/ARCHITECTURE.md");
    let mut arch_doc: BTreeMap<String, u32> = BTreeMap::new();
    if let Some(text) = &arch {
        let mut in_fence = false;
        for (ln, line) in text.lines().enumerate() {
            let ln = ln as u32 + 1;
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                if let Some(code) = status_code_of(line.trim_start()) {
                    arch_doc.entry(code.to_string()).or_insert(ln);
                }
                continue;
            }
            for (i, span) in line.split('`').enumerate() {
                if i % 2 == 1 {
                    if let Some(code) = status_code_of(span) {
                        arch_doc.entry(code.to_string()).or_insert(ln);
                    }
                }
            }
        }
    }

    for (code, (line, col)) in &emitted {
        if proto.is_some() && !proto_doc.contains_key(code) {
            push(
                out,
                "protocol-codes",
                &serve.rel,
                *line,
                *col,
                format!(
                    "status `{code}` is emitted here but absent from the protocol.rs grammar doc"
                ),
            );
        }
        if arch.is_some() && !arch_doc.contains_key(code) {
            push(
                out,
                "protocol-codes",
                &serve.rel,
                *line,
                *col,
                format!("status `{code}` is emitted here but absent from docs/ARCHITECTURE.md"),
            );
        }
    }
    for (code, line) in &proto_doc {
        if !emitted.contains_key(code) {
            push(
                out,
                "protocol-codes",
                &proto.unwrap().rel,
                *line,
                1,
                format!("status `{code}` is documented here but serve.rs never emits it"),
            );
        }
    }
    for (code, line) in &arch_doc {
        if !emitted.contains_key(code) {
            push(
                out,
                "protocol-codes",
                "docs/ARCHITECTURE.md",
                *line,
                1,
                format!("status `{code}` is documented here but serve.rs never emits it"),
            );
        }
    }
}

// -------------------------------------------------------- schema: exit codes

fn exit_codes(ctx: &Ctx, out: &mut Vec<Finding>) {
    let Some(main) = ctx
        .files
        .iter()
        .find(|f| f.rel.ends_with("harness/src/main.rs"))
    else {
        return;
    };
    let toks: Vec<&Token> = code_tokens(main).collect();
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
    let small = |k: usize| -> Option<u32> {
        let t = toks.get(k)?;
        if t.kind == TokKind::Num {
            t.text.parse::<u32>().ok().filter(|n| *n <= 9)
        } else {
            None
        }
    };
    // Exit codes surface three ways in main.rs: `std::process::exit(n)`,
    // `return n;` inside the i32-returning run_* commands, and a small
    // integer as a function's trailing expression (`n` then `}`).
    let mut used: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
    for (k, t) in toks.iter().enumerate() {
        let hit = if text(k) == "exit" && text(k + 1) == "(" {
            small(k + 2)
        } else if text(k) == "return" {
            small(k + 1).filter(|_| text(k + 2) == ";")
        } else if text(k + 1) == "}" && matches!(text(k.wrapping_sub(1)), ";" | "{" | "}") {
            small(k)
        } else {
            None
        };
        if let Some(code) = hit {
            used.entry(code).or_insert((t.line, t.col));
        }
    }

    let Some(docs) = ctx.read_text("docs/REPRODUCING.md") else {
        return;
    };
    let mut documented: BTreeMap<u32, u32> = BTreeMap::new();
    for (ln, line) in docs.lines().enumerate() {
        let ln = ln as u32 + 1;
        // Table rows: `| <code> | meaning |`.
        let mut cells = line.split('|');
        if line.trim_start().starts_with('|') {
            if let Some(code) = cells.nth(1).and_then(|c| c.trim().parse::<u32>().ok()) {
                if code <= 9 {
                    documented.entry(code).or_insert(ln);
                }
            }
        }
        // Prose: "exits 5", "exit code 3", "exit(2".
        let mut rest = line;
        while let Some(at) = rest.find("exit") {
            rest = &rest[at + 4..];
            let tail = rest
                .trim_start_matches('s')
                .trim_start_matches(' ')
                .trim_start_matches("code")
                .trim_start_matches(['s', ' ', '(']);
            if let Some(d) = tail.chars().next().and_then(|c| c.to_digit(10)) {
                documented.entry(d).or_insert(ln);
            }
        }
    }

    for (code, (line, col)) in &used {
        if !documented.contains_key(code) {
            push(
                out,
                "exit-codes",
                &main.rel,
                *line,
                *col,
                format!("exit code {code} is not documented in docs/REPRODUCING.md"),
            );
        }
    }
    for (code, line) in &documented {
        if !used.contains_key(code) {
            push(
                out,
                "exit-codes",
                "docs/REPRODUCING.md",
                *line,
                1,
                format!("exit code {code} is documented here but main.rs never produces it"),
            );
        }
    }
}

// ------------------------------------------------------------------ doc links

/// Extract `](target)` link targets (with line numbers) from Markdown,
/// skipping code fences. Ported from the retired `tests/doc_links.rs`.
fn md_links(md: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (ln, line) in md.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(at) = rest.find("](") {
            rest = &rest[at + 2..];
            if let Some(end) = rest.find(')') {
                out.push((ln as u32 + 1, rest[..end].to_string()));
                rest = &rest[end + 1..];
            } else {
                break;
            }
        }
    }
    out
}

fn doc_links(ctx: &Ctx, out: &mut Vec<Finding>) {
    let mut files: Vec<std::path::PathBuf> = ["README.md", "ROADMAP.md", "CHANGES.md"]
        .iter()
        .map(|f| ctx.root.join(f))
        .filter(|p| p.exists())
        .collect();
    for dir in [ctx.root.join("docs"), ctx.root.join("docs/book")] {
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "md") {
                    files.push(p);
                }
            }
        }
    }
    files.sort();
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        let Some(dir) = file.parent() else { continue };
        let rel = file
            .strip_prefix(&ctx.root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        for (line, link) in md_links(&text) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with('#')
                || link.starts_with("mailto:")
            {
                continue;
            }
            let target = link.split('#').next().unwrap_or("");
            if target.is_empty() {
                continue;
            }
            if !dir.join(target).exists() {
                push(
                    out,
                    "doc-links",
                    &rel,
                    line,
                    1,
                    format!("broken link `{link}` (no such file relative to this page)"),
                );
            }
        }
    }
}

// ------------------------------------------------------------- allow hygiene

fn allow_hygiene(ctx: &Ctx, out: &mut Vec<Finding>) {
    let known: Vec<&str> = all().iter().map(|l| l.id).collect();
    for f in &ctx.files {
        for a in &f.allows {
            if a.ids.is_empty() {
                push(
                    out,
                    "samie-allow",
                    &f.rel,
                    a.line,
                    1,
                    "samie-allow names no lint ids".to_string(),
                );
            }
            for id in &a.ids {
                if !known.contains(&id.as_str()) {
                    push(
                        out,
                        "samie-allow",
                        &f.rel,
                        a.line,
                        1,
                        format!("samie-allow names unknown lint `{id}`"),
                    );
                }
            }
            if a.reason.is_empty() {
                push(
                    out,
                    "samie-allow",
                    &f.rel,
                    a.line,
                    1,
                    "samie-allow without a reason — suppressions must be auditable".to_string(),
                );
            }
        }
    }
}
