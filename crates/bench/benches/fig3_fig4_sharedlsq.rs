//! Figures 3/4 bench: the SharedLSQ sizing-study simulation (unbounded
//! SharedLSQ occupancy tracking) across the DistribLSQ geometries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ooo_sim::Simulator;
use samie_lsq::{LoadStoreQueue, SamieConfig, SamieLsq};
use spec_traces::{by_name, SpecTrace};

const INSTRS: u64 = 30_000;

fn bench_sizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig4_sizing");
    group.sample_size(10);
    let spec = by_name("facerec").unwrap();
    for (banks, epb) in [(128usize, 1usize), (64, 2), (32, 4)] {
        group.bench_with_input(
            BenchmarkId::new("sizing", format!("{banks}x{epb}")),
            &(banks, epb),
            |b, &(banks, epb)| {
                b.iter(|| {
                    let lsq = SamieLsq::new(SamieConfig::sizing_study(banks, epb));
                    let mut sim = Simulator::paper(lsq, SpecTrace::new(spec, 42));
                    sim.run(INSTRS);
                    sim.lsq().activity().occupancy.mean_shared_entries()
                })
            },
        );
    }
    group.finish();

    eprintln!("\nFigure 3 (facerec, reduced): mean unbounded-SharedLSQ occupancy");
    for (banks, epb) in [(128usize, 1usize), (64, 2), (32, 4)] {
        let lsq = SamieLsq::new(SamieConfig::sizing_study(banks, epb));
        let mut sim = Simulator::paper(lsq, SpecTrace::new(spec, 42));
        sim.run(INSTRS);
        eprintln!(
            "  {banks:>3}x{epb}: mean {:.2}, p99 {}",
            sim.lsq().activity().occupancy.mean_shared_entries(),
            sim.lsq().shared_entries_for_quantile(0.99)
        );
    }
}

criterion_group!(benches, bench_sizing);
criterion_main!(benches);
