//! Figures 3/4 bench: the SharedLSQ sizing-study simulation (unbounded
//! SharedLSQ occupancy tracking) across the DistribLSQ geometries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exp_harness::runner::{run_one, RunConfig};
use exp_harness::session::SimSession;
use samie_lsq::{DesignSpec, SamieConfig, SamieLsq};
use spec_traces::by_name;

const RC: RunConfig = RunConfig {
    instrs: 30_000,
    warmup: 0,
    seed: 42,
};

fn bench_sizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig4_sizing");
    group.sample_size(10);
    let spec = by_name("facerec").unwrap();
    for (banks, epb) in [(128usize, 1usize), (64, 2), (32, 4)] {
        group.bench_with_input(
            BenchmarkId::new("sizing", format!("{banks}x{epb}")),
            &(banks, epb),
            |b, &(banks, epb)| {
                let design = DesignSpec::Samie(SamieConfig::sizing_study(banks, epb));
                b.iter(|| {
                    run_one(spec, design, &RC)
                        .lsq
                        .occupancy
                        .mean_shared_entries()
                })
            },
        );
    }
    group.finish();

    eprintln!("\nFigure 3 (facerec, reduced): mean unbounded-SharedLSQ occupancy");
    for (banks, epb) in [(128usize, 1usize), (64, 2), (32, 4)] {
        let mut p99 = 0;
        let report = SimSession::new(
            DesignSpec::Samie(SamieConfig::sizing_study(banks, epb)),
            spec,
        )
        .run_config(RC)
        .on_finish(|_, lsq| {
            p99 = lsq
                .as_any()
                .downcast_ref::<SamieLsq>()
                .expect("sizing study runs SAMIE")
                .shared_entries_for_quantile(0.99);
        })
        .run();
        eprintln!(
            "  {banks:>3}x{epb}: mean {:.2}, p99 {p99}",
            report.stats().lsq.occupancy.mean_shared_entries(),
        );
    }
}

criterion_group!(benches, bench_sizing);
criterion_main!(benches);
