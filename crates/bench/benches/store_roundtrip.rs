//! Microbenchmarks of the experiment store: key fingerprinting, entry
//! encode/decode, and the full put/get round trip through the
//! filesystem. A warm sweep's cost is one `get` per point, so these
//! bound how much faster than simulation a cache hit can be.

use criterion::{criterion_group, criterion_main, Criterion};
use exp_store::{
    decode_entry, encode_entry, visit_stat_fields, ExperimentStore, PointKey, StoredPoint,
    SIM_VERSION,
};
use ooo_sim::SimStats;
use std::hint::black_box;

fn sample_key(seed: u64) -> PointKey {
    PointKey {
        design: "samie:64x2x8:sh8:ab64".into(),
        workload: "spec:gzip:0123456789abcdef".into(),
        seed,
        instrs: 120_000,
        warmup: 30_000,
        sim_config: "fw8,dw8,iwi8,iwf8,cw8,fq64,rob256".into(),
        sim_version: SIM_VERSION.into(),
    }
}

fn sample_point() -> StoredPoint {
    let mut stats = SimStats::default();
    let mut n = 1u64;
    visit_stat_fields(&mut stats, |_, v| {
        *v = n.wrapping_mul(0x9e37_79b9);
        n += 1;
    });
    StoredPoint {
        stats,
        wall_nanos: 40_000_000,
        extras: vec![("p99_shared".into(), 6)],
    }
}

fn bench_key_hash(c: &mut Criterion) {
    let key = sample_key(42);
    c.bench_function("store_key_hash128", |b| {
        b.iter(|| black_box(&key).hash128())
    });
}

fn bench_entry_codec(c: &mut Criterion) {
    let key = sample_key(42);
    let point = sample_point();
    let text = encode_entry(&key.canonical(), &point);
    c.bench_function("store_entry_encode", |b| {
        b.iter(|| encode_entry(black_box(&key.canonical()), black_box(&point)))
    });
    c.bench_function("store_entry_decode", |b| {
        b.iter(|| decode_entry(black_box(&text)).unwrap())
    });
}

fn bench_put_get(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("samie-bench-store");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ExperimentStore::open(&dir).unwrap();
    let point = sample_point();
    let mut seed = 0u64;
    c.bench_function("store_put", |b| {
        b.iter(|| {
            seed += 1;
            store.put(&sample_key(seed), &point).unwrap()
        })
    });
    let key = sample_key(1);
    c.bench_function("store_get_hit", |b| {
        b.iter(|| store.get(black_box(&key)).unwrap().unwrap())
    });
    let miss = sample_key(u64::MAX);
    c.bench_function("store_get_miss", |b| {
        b.iter(|| assert!(store.get(black_box(&miss)).unwrap().is_none()))
    });
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_key_hash, bench_entry_codec, bench_put_get);
criterion_main!(benches);
