//! Figure 1 bench: ARB vs unbounded LSQ simulation throughput.
//!
//! Criterion measures the cost of the simulations that regenerate
//! Figure 1; the bench also prints a reduced version of the figure's data
//! series as a side effect, so a `cargo bench` run doubles as a smoke
//! regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exp_harness::runner::{run_one, RunConfig};
use samie_lsq::{ArbConfig, DesignSpec};
use spec_traces::by_name;

const RC: RunConfig = RunConfig {
    instrs: 30_000,
    warmup: 0,
    seed: 42,
};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_arb");
    group.sample_size(10);
    let spec = by_name("gcc").unwrap();
    for (banks, rows) in [(1usize, 128usize), (64, 2), (128, 1)] {
        group.bench_with_input(
            BenchmarkId::new("arb", format!("{banks}x{rows}")),
            &(banks, rows),
            |b, &(banks, rows)| {
                b.iter(|| run_one(spec, DesignSpec::Arb(ArbConfig::fig1(banks, rows)), &RC).ipc())
            },
        );
    }
    group.bench_function("unbounded_reference", |b| {
        b.iter(|| run_one(spec, DesignSpec::Unbounded, &RC).ipc())
    });
    group.finish();

    // Side-effect regeneration at bench scale.
    let reference = run_one(spec, DesignSpec::Unbounded, &RC).ipc();
    eprintln!("\nFigure 1 (gcc, reduced): IPC relative to unbounded");
    for (banks, rows) in [(1usize, 128usize), (8, 16), (64, 2), (128, 1)] {
        let ipc = run_one(spec, DesignSpec::Arb(ArbConfig::fig1(banks, rows)), &RC).ipc();
        eprintln!("  {banks:>3}x{rows:<3} {:>6.1}%", ipc / reference * 100.0);
    }
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
