//! Figure 1 bench: ARB vs unbounded LSQ simulation throughput.
//!
//! Criterion measures the cost of the simulations that regenerate
//! Figure 1; the bench also prints a reduced version of the figure's data
//! series as a side effect, so a `cargo bench` run doubles as a smoke
//! regeneration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ooo_sim::Simulator;
use samie_lsq::{ArbConfig, ArbLsq, UnboundedLsq};
use spec_traces::{by_name, SpecTrace};

const INSTRS: u64 = 30_000;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_arb");
    group.sample_size(10);
    let spec = by_name("gcc").unwrap();
    for (banks, rows) in [(1usize, 128usize), (64, 2), (128, 1)] {
        group.bench_with_input(
            BenchmarkId::new("arb", format!("{banks}x{rows}")),
            &(banks, rows),
            |b, &(banks, rows)| {
                b.iter(|| {
                    let lsq = ArbLsq::new(ArbConfig::fig1(banks, rows));
                    let mut sim = Simulator::paper(lsq, SpecTrace::new(spec, 42));
                    sim.run(INSTRS).ipc()
                })
            },
        );
    }
    group.bench_function("unbounded_reference", |b| {
        b.iter(|| {
            let mut sim = Simulator::paper(UnboundedLsq::new(), SpecTrace::new(spec, 42));
            sim.run(INSTRS).ipc()
        })
    });
    group.finish();

    // Side-effect regeneration at bench scale.
    let reference = {
        let mut sim = Simulator::paper(UnboundedLsq::new(), SpecTrace::new(spec, 42));
        sim.run(INSTRS).ipc()
    };
    eprintln!("\nFigure 1 (gcc, reduced): IPC relative to unbounded");
    for (banks, rows) in [(1usize, 128usize), (8, 16), (64, 2), (128, 1)] {
        let lsq = ArbLsq::new(ArbConfig::fig1(banks, rows));
        let mut sim = Simulator::paper(lsq, SpecTrace::new(spec, 42));
        let ipc = sim.run(INSTRS).ipc();
        eprintln!("  {banks:>3}x{rows:<3} {:>6.1}%", ipc / reference * 100.0);
    }
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
