//! Figures 11/12 bench: the active-area accounting (occupancy integrals →
//! µm²·cycles) and its reduced regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use energy_model::active_area;
use exp_harness::runner::{run_one, RunConfig};
use samie_lsq::{DesignSpec, SamieConfig};
use spec_traces::by_name;
use std::hint::black_box;

const RC: RunConfig = RunConfig {
    instrs: 30_000,
    warmup: 0,
    seed: 42,
};

fn bench_area(c: &mut Criterion) {
    let cfg = SamieConfig::paper();
    let spec = by_name("galgel").unwrap();
    let samie_stats = run_one(spec, DesignSpec::samie_paper(), &RC);

    c.bench_function("active_area_accounting", |b| {
        b.iter(|| active_area(black_box(&samie_stats.lsq), black_box(&cfg)).total())
    });

    eprintln!("\nFigures 11/12 (reduced): accumulated active area (um2*cycles)");
    for bench in ["gcc", "galgel", "facerec"] {
        let spec = by_name(bench).unwrap();
        let s = run_one(spec, DesignSpec::samie_paper(), &RC);
        let cst = run_one(spec, DesignSpec::conventional_paper(), &RC);
        let sa = active_area(&s.lsq, &cfg);
        let ca = active_area(&cst.lsq, &cfg);
        let (d, sh, ab) = sa.breakdown_fractions();
        eprintln!(
            "  {bench:>8}: conventional {:.2e}, SAMIE {:.2e} ({:.0}%)  breakdown d/s/a {:.0}/{:.0}/{:.0}%",
            ca.total(),
            sa.total(),
            sa.total() / ca.total() * 100.0,
            d * 100.0,
            sh * 100.0,
            ab * 100.0
        );
    }
}

criterion_group!(benches, bench_area);
criterion_main!(benches);
