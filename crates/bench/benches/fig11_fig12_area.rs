//! Figures 11/12 bench: the active-area accounting (occupancy integrals →
//! µm²·cycles) and its reduced regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use energy_model::active_area;
use ooo_sim::Simulator;
use samie_lsq::{ConventionalLsq, SamieConfig, SamieLsq};
use spec_traces::{by_name, SpecTrace};
use std::hint::black_box;

const INSTRS: u64 = 30_000;

fn bench_area(c: &mut Criterion) {
    let cfg = SamieConfig::paper();
    let spec = by_name("galgel").unwrap();
    let mut sim = Simulator::paper(SamieLsq::paper(), SpecTrace::new(spec, 42));
    let samie_stats = sim.run(INSTRS);

    c.bench_function("active_area_accounting", |b| {
        b.iter(|| active_area(black_box(&samie_stats.lsq), black_box(&cfg)).total())
    });

    eprintln!("\nFigures 11/12 (reduced): accumulated active area (um2*cycles)");
    for bench in ["gcc", "galgel", "facerec"] {
        let spec = by_name(bench).unwrap();
        let mut sim = Simulator::paper(SamieLsq::paper(), SpecTrace::new(spec, 42));
        let s = sim.run(INSTRS);
        let mut sim = Simulator::paper(ConventionalLsq::paper(), SpecTrace::new(spec, 42));
        let cst = sim.run(INSTRS);
        let sa = active_area(&s.lsq, &cfg);
        let ca = active_area(&cst.lsq, &cfg);
        let (d, sh, ab) = sa.breakdown_fractions();
        eprintln!(
            "  {bench:>8}: conventional {:.2e}, SAMIE {:.2e} ({:.0}%)  breakdown d/s/a {:.0}/{:.0}/{:.0}%",
            ca.total(),
            sa.total(),
            sa.total() / ca.total() * 100.0,
            d * 100.0,
            sh * 100.0,
            ab * 100.0
        );
    }
}

criterion_group!(benches, bench_area);
criterion_main!(benches);
