//! Figures 9/10 bench: the D-cache/D-TLB energy comparison — dominated by
//! the simulation producing the access counters; the bench tracks that
//! cost and regenerates the reduced figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use energy_model::{dcache_energy_nj, dtlb_energy_nj};
use exp_harness::runner::{run_one, RunConfig};
use samie_lsq::DesignSpec;
use spec_traces::by_name;

const RC: RunConfig = RunConfig {
    instrs: 30_000,
    warmup: 0,
    seed: 42,
};

fn bench_cache_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig10");
    group.sample_size(10);
    for bench in ["swim", "mcf"] {
        let spec = by_name(bench).unwrap();
        group.bench_with_input(BenchmarkId::new("samie_run", bench), &spec, |b, spec| {
            b.iter(|| {
                let st = run_one(spec, DesignSpec::samie_paper(), &RC);
                dcache_energy_nj(&st.l1d) + dtlb_energy_nj(st.dtlb_accesses)
            })
        });
    }
    group.finish();

    eprintln!("\nFigures 9/10 (reduced): D-cache / D-TLB energy savings");
    for bench in ["swim", "mcf", "sixtrack"] {
        let spec = by_name(bench).unwrap();
        let s = run_one(spec, DesignSpec::samie_paper(), &RC);
        let cst = run_one(spec, DesignSpec::conventional_paper(), &RC);
        eprintln!(
            "  {bench:>8}: D$ saved {:.1}%  D-TLB saved {:.1}%",
            (1.0 - dcache_energy_nj(&s.l1d) / dcache_energy_nj(&cst.l1d)) * 100.0,
            (1.0 - dtlb_energy_nj(s.dtlb_accesses) / dtlb_energy_nj(cst.dtlb_accesses)) * 100.0
        );
    }
}

criterion_group!(benches, bench_cache_energy);
criterion_main!(benches);
