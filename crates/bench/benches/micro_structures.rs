//! Microbenchmarks of the hot structures: LSQ placement/search paths,
//! cache accesses, branch prediction, and raw trace generation — the
//! per-operation costs that bound overall simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use exp_harness::runner::{run_one, RunConfig};
use mem_hier::{AccessKind, Cache, CacheConfig, DcacheAccessMode};
use ooo_sim::BranchPredictor;
use samie_lsq::{DesignSpec, LoadStoreQueue, MemOp};
use spec_traces::{by_name, SpecTrace};
use std::hint::black_box;
use trace_isa::{MemRef, TraceSource};

fn bench_samie_placement(c: &mut Criterion) {
    c.bench_function("samie_place_and_commit", |b| {
        let mut lsq = DesignSpec::samie_paper().build();
        let mut age = 0u64;
        b.iter(|| {
            age += 1;
            let op = MemOp::load(age, MemRef::new((age % 512) * 32, 8));
            lsq.dispatch(op);
            lsq.address_ready(age);
            lsq.commit(age);
        })
    });
}

fn bench_conventional_placement(c: &mut Criterion) {
    c.bench_function("conventional_place_and_commit", |b| {
        let mut lsq = DesignSpec::conventional_paper().build();
        let mut age = 0u64;
        b.iter(|| {
            age += 1;
            let op = MemOp::load(age, MemRef::new((age % 512) * 32, 8));
            lsq.dispatch(op);
            lsq.address_ready(age);
            lsq.commit(age);
        })
    });
}

fn bench_cache_access(c: &mut Criterion) {
    c.bench_function("l1d_conventional_access", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(32) % (1 << 20);
            cache.access(black_box(addr), AccessKind::Read)
        })
    });
    c.bench_function("l1d_way_known_access", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        let out = cache.access(0x1000, AccessKind::Read);
        cache.set_present_bit(out.set, out.way);
        b.iter(|| cache.access_way_known(black_box(0x1008), out.set, out.way, AccessKind::Read))
    });
    // The composed-mode constant should also stay trivially cheap.
    let _ = DcacheAccessMode::CONVENTIONAL;
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("hybrid_predictor_predict_update", |b| {
        let mut p = BranchPredictor::paper();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pc = 0x40_0000 + (i % 512) * 4;
            let taken = (i / 3).is_multiple_of(2);
            let pred = p.predict(black_box(pc));
            p.update(pc, taken);
            pred
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("spec_trace_next_op", |b| {
        let mut t = SpecTrace::new(by_name("gcc").unwrap(), 42);
        b.iter(|| t.next_op())
    });
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);
    group.bench_function("10k_instrs_unbounded_gcc", |b| {
        let rc = RunConfig {
            instrs: 10_000,
            warmup: 0,
            seed: 42,
        };
        b.iter(|| {
            let spec = by_name("gcc").unwrap();
            run_one(spec, DesignSpec::Unbounded, &rc).cycles
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_samie_placement,
    bench_conventional_placement,
    bench_cache_access,
    bench_predictor,
    bench_trace_generation,
    bench_sim_throughput
);
criterion_main!(benches);
