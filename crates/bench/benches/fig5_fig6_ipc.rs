//! Figures 5/6 bench: paired (conventional vs SAMIE) simulation — the
//! workhorse behind the IPC-loss and deadlock-rate figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ooo_sim::Simulator;
use samie_lsq::{ConventionalLsq, SamieLsq};
use spec_traces::{by_name, SpecTrace};

const INSTRS: u64 = 30_000;

fn bench_paired(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_fig6_paired");
    group.sample_size(10);
    for bench in ["gcc", "swim", "ammp"] {
        let spec = by_name(bench).unwrap();
        group.bench_with_input(BenchmarkId::new("samie", bench), &spec, |b, spec| {
            b.iter(|| {
                let mut sim = Simulator::paper(SamieLsq::paper(), SpecTrace::new(spec, 42));
                sim.run(INSTRS).ipc()
            })
        });
        group.bench_with_input(BenchmarkId::new("conventional", bench), &spec, |b, spec| {
            b.iter(|| {
                let mut sim = Simulator::paper(ConventionalLsq::paper(), SpecTrace::new(spec, 42));
                sim.run(INSTRS).ipc()
            })
        });
    }
    group.finish();

    eprintln!("\nFigures 5/6 (reduced): IPC loss and deadlock rate");
    for bench in ["gcc", "swim", "ammp"] {
        let spec = by_name(bench).unwrap();
        let mut s = Simulator::paper(SamieLsq::paper(), SpecTrace::new(spec, 42));
        let samie = s.run(INSTRS);
        let mut c2 = Simulator::paper(ConventionalLsq::paper(), SpecTrace::new(spec, 42));
        let conv = c2.run(INSTRS);
        eprintln!(
            "  {bench:>8}: loss {:+.2}%  deadlocks {:.0}/Mcycle",
            (conv.ipc() - samie.ipc()) / conv.ipc() * 100.0,
            samie.deadlocks_per_mcycle()
        );
    }
}

criterion_group!(benches, bench_paired);
criterion_main!(benches);
