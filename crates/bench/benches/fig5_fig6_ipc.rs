//! Figures 5/6 bench: paired (conventional vs SAMIE) simulation — the
//! workhorse behind the IPC-loss and deadlock-rate figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exp_harness::runner::{run_one, RunConfig};
use samie_lsq::DesignSpec;
use spec_traces::by_name;

const RC: RunConfig = RunConfig {
    instrs: 30_000,
    warmup: 0,
    seed: 42,
};

fn bench_paired(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_fig6_paired");
    group.sample_size(10);
    for bench in ["gcc", "swim", "ammp"] {
        let spec = by_name(bench).unwrap();
        group.bench_with_input(BenchmarkId::new("samie", bench), &spec, |b, spec| {
            b.iter(|| run_one(*spec, DesignSpec::samie_paper(), &RC).ipc())
        });
        group.bench_with_input(BenchmarkId::new("conventional", bench), &spec, |b, spec| {
            b.iter(|| run_one(*spec, DesignSpec::conventional_paper(), &RC).ipc())
        });
    }
    group.finish();

    eprintln!("\nFigures 5/6 (reduced): IPC loss and deadlock rate");
    for bench in ["gcc", "swim", "ammp"] {
        let spec = by_name(bench).unwrap();
        let samie = run_one(spec, DesignSpec::samie_paper(), &RC);
        let conv = run_one(spec, DesignSpec::conventional_paper(), &RC);
        eprintln!(
            "  {bench:>8}: loss {:+.2}%  deadlocks {:.0}/Mcycle",
            (conv.ipc() - samie.ipc()) / conv.ipc() * 100.0,
            samie.deadlocks_per_mcycle()
        );
    }
}

criterion_group!(benches, bench_paired);
criterion_main!(benches);
