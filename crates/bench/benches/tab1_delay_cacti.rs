//! Table 1 / §3.6 bench: the cacti-lite analytic model (it is nearly free;
//! the bench guards against accidental regressions into expensive
//! numerics) plus a printed regeneration of both artefacts.

use criterion::{criterion_group, criterion_main, Criterion};
use energy_model::cacti::{cache_access_times, lsq_delays, CactiParams};
use energy_model::constants::TABLE1;
use std::hint::black_box;

fn bench_cacti(c: &mut Criterion) {
    let p = CactiParams::default();
    c.bench_function("tab1_all_configs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (kb, assoc, ports, _, _) in TABLE1 {
                let d = cache_access_times(black_box(&p), kb, assoc, ports);
                acc += d.conventional_ns + d.way_known_ns;
            }
            acc
        })
    });
    c.bench_function("section36_lsq_delays", |b| {
        b.iter(|| lsq_delays(black_box(&p)))
    });

    eprintln!("\nTable 1 regeneration (model vs paper):");
    for (kb, assoc, ports, conv, known) in TABLE1 {
        let d = cache_access_times(&p, kb, assoc, ports);
        eprintln!(
            "  {kb:>2}KB {assoc}-way {ports}p: conv {:.3} (paper {:.3})  known {:.3} (paper {:.3})",
            d.conventional_ns, conv, d.way_known_ns, known
        );
    }
    let d = lsq_delays(&p);
    eprintln!(
        "§3.6: conv128 {:.3} / dist {:.3} / shared {:.3} / abuf {:.3} ns",
        d.conventional_128, d.dist_total, d.shared, d.addr_buffer
    );
}

criterion_group!(benches, bench_cacti);
criterion_main!(benches);
