//! Figures 7/8 bench: activity-ledger pricing (the conversion from
//! simulator counters to nanojoules) and its regeneration at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use energy_model::price_lsq;
use exp_harness::runner::{run_one, RunConfig};
use samie_lsq::DesignSpec;
use spec_traces::by_name;
use std::hint::black_box;

const RC: RunConfig = RunConfig {
    instrs: 30_000,
    warmup: 0,
    seed: 42,
};

fn bench_pricing(c: &mut Criterion) {
    let spec = by_name("swim").unwrap();
    let samie_stats = run_one(spec, DesignSpec::samie_paper(), &RC);
    let conv_stats = run_one(spec, DesignSpec::conventional_paper(), &RC);

    c.bench_function("price_lsq_ledger", |b| {
        b.iter(|| price_lsq(black_box(&samie_stats.lsq)).total())
    });

    let se = price_lsq(&samie_stats.lsq);
    let ce = price_lsq(&conv_stats.lsq);
    let (d, s, a, u) = se.breakdown_fractions();
    eprintln!(
        "\nFigure 7 (swim, reduced): conventional {:.0} nJ vs SAMIE {:.0} nJ ({:.1}% saved)",
        ce.total(),
        se.total(),
        (1.0 - se.total() / ce.total()) * 100.0
    );
    eprintln!(
        "Figure 8 (swim): dist {:.0}% shared {:.0}% abuf {:.0}% bus {:.0}%",
        d * 100.0,
        s * 100.0,
        a * 100.0,
        u * 100.0
    );
}

criterion_group!(benches, bench_pricing);
criterion_main!(benches);
