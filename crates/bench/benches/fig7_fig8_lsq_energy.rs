//! Figures 7/8 bench: activity-ledger pricing (the conversion from
//! simulator counters to nanojoules) and its regeneration at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use energy_model::price_lsq;
use ooo_sim::Simulator;
use samie_lsq::{ConventionalLsq, SamieLsq};
use spec_traces::{by_name, SpecTrace};
use std::hint::black_box;

const INSTRS: u64 = 30_000;

fn bench_pricing(c: &mut Criterion) {
    let spec = by_name("swim").unwrap();
    let mut sim = Simulator::paper(SamieLsq::paper(), SpecTrace::new(spec, 42));
    let samie_stats = sim.run(INSTRS);
    let mut sim = Simulator::paper(ConventionalLsq::paper(), SpecTrace::new(spec, 42));
    let conv_stats = sim.run(INSTRS);

    c.bench_function("price_lsq_ledger", |b| {
        b.iter(|| price_lsq(black_box(&samie_stats.lsq)).total())
    });

    let se = price_lsq(&samie_stats.lsq);
    let ce = price_lsq(&conv_stats.lsq);
    let (d, s, a, u) = se.breakdown_fractions();
    eprintln!(
        "\nFigure 7 (swim, reduced): conventional {:.0} nJ vs SAMIE {:.0} nJ ({:.1}% saved)",
        ce.total(),
        se.total(),
        (1.0 - se.total() / ce.total()) * 100.0
    );
    eprintln!(
        "Figure 8 (swim): dist {:.0}% shared {:.0}% abuf {:.0}% bus {:.0}%",
        d * 100.0,
        s * 100.0,
        a * 100.0,
        u * 100.0
    );
}

criterion_group!(benches, bench_pricing);
criterion_main!(benches);
