//! # samie-bench — benchmark support
//!
//! This crate exists to host the Criterion bench targets (one per paper
//! table/figure, see `benches/`). The library itself only re-exports the
//! workspace crates the benches drive.

pub use energy_model;
pub use exp_harness;
pub use mem_hier;
pub use ooo_sim;
pub use samie_lsq;
pub use spec_traces;
pub use trace_isa;
