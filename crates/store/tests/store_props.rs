//! Property tests for the store's key and entry layers: any key-field
//! change must produce a new content address, and entries must round-trip
//! bit-identically for arbitrary statistics.

use proptest::prelude::*;

use exp_store::{decode_entry, encode_entry, visit_stat_fields, PointKey, StoredPoint};
use ooo_sim::SimStats;

fn key_strategy() -> impl Strategy<Value = PointKey> {
    (
        prop::sample::select(vec![
            "conv:128",
            "filtered:128:1024:2",
            "samie:64x2x8:sh8:ab64",
            "unbounded",
        ]),
        prop::sample::select(vec!["spec:gzip:00ff", "adv:bursty:aa", "strc:deadbeef"]),
        any::<u64>(),
        1u64..10_000_000,
        0u64..10_000_000,
    )
        .prop_map(|(design, workload, seed, instrs, warmup)| PointKey {
            design: design.into(),
            workload: workload.into(),
            seed,
            instrs,
            warmup,
            sim_config: "paper".into(),
            sim_version: "samie-sim-v1".into(),
        })
}

/// Every single-field mutation of `k` (guaranteed different from `k`).
fn mutations(k: &PointKey) -> Vec<(&'static str, PointKey)> {
    let mut out = Vec::new();
    let mut m = k.clone();
    m.design.push_str(":x");
    out.push(("design", m));
    let mut m = k.clone();
    m.workload = format!("{}x", m.workload);
    out.push(("workload", m));
    let mut m = k.clone();
    m.seed = m.seed.wrapping_add(1);
    out.push(("seed", m));
    let mut m = k.clone();
    m.instrs += 1;
    out.push(("instrs", m));
    let mut m = k.clone();
    m.warmup += 1;
    out.push(("warmup", m));
    let mut m = k.clone();
    m.sim_config = format!("{}+", m.sim_config);
    out.push(("sim_config", m));
    let mut m = k.clone();
    m.sim_version = format!("{}2", m.sim_version);
    out.push(("sim_version", m));
    out
}

fn stats_strategy() -> impl Strategy<Value = SimStats> {
    // 70 counters driven from a handful of generators: fill the schema
    // with a seeded mixing function so every field varies independently
    // enough to catch positional swaps.
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| {
        let mut s = SimStats::default();
        let mut i = 0u64;
        visit_stat_fields(&mut s, |_, v| {
            *v = a
                .wrapping_mul(i.wrapping_add(1))
                .wrapping_add(b.rotate_left((i % 63) as u32));
            i += 1;
        });
        s
    })
}

proptest! {
    #[test]
    fn any_key_field_change_changes_the_address(k in key_strategy()) {
        let base_hash = k.hash128();
        let base_canonical = k.canonical();
        for (field, m) in mutations(&k) {
            prop_assert_ne!(m.hash128(), base_hash, "field `{}` did not move the hash", field);
            prop_assert_ne!(m.canonical(), base_canonical.clone(), "field `{}` did not move the canonical string", field);
            prop_assert_ne!(m.file_name(), k.file_name(), "field `{}` did not move the file name", field);
        }
    }

    #[test]
    fn entries_round_trip_for_arbitrary_stats(
        stats in stats_strategy(),
        wall in any::<u64>(),
        extra in 0u64..1_000_000,
        k in key_strategy(),
    ) {
        let point = StoredPoint { stats, wall_nanos: wall, extras: vec![("p99_shared".into(), extra)] };
        let text = encode_entry(&k.canonical(), &point);
        let decoded = decode_entry(&text).unwrap();
        prop_assert_eq!(decoded.key_canonical, k.canonical());
        prop_assert_eq!(decoded.point, point);
    }

    #[test]
    fn damaged_entries_never_decode(stats in stats_strategy(), pos_seed in any::<u64>()) {
        let k = PointKey {
            design: "conv:128".into(),
            workload: "spec:gzip:00".into(),
            seed: 7,
            instrs: 1000,
            warmup: 100,
            sim_config: "paper".into(),
            sim_version: "v1".into(),
        };
        let point = StoredPoint { stats, wall_nanos: 1, extras: vec![] };
        let text = encode_entry(&k.canonical(), &point);
        // Truncate at an arbitrary position: must never decode.
        let cut = (pos_seed as usize) % text.len();
        prop_assert!(decode_entry(&text[..cut]).is_err(), "truncation at {} decoded", cut);
        // Flip one byte (avoiding a flip that lands on its own value).
        let mut bytes = text.clone().into_bytes();
        let at = (pos_seed as usize).wrapping_mul(31) % bytes.len();
        bytes[at] ^= 0x01;
        if let Ok(s) = String::from_utf8(bytes) {
            prop_assert!(decode_entry(&s).is_err(), "bit flip at {} decoded", at);
        }
    }
}
