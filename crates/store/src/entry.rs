//! On-disk entry format: a versioned, checksummed text encoding of one
//! stored point.
//!
//! ```text
//! SAMIE-STORE v1
//! key <canonical PointKey string>
//! wall_nanos <u64>
//! stat <field> <u64>      one line per SimStats counter (fixed schema)
//! extra <name> <u64>      zero or more experiment-specific extras
//! sum <32 hex digits>     fingerprint128 of everything above
//! ```
//!
//! Decoding is strict: wrong magic, a bad checksum, an unknown line, a
//! missing or duplicated counter, and trailing garbage are all rejected
//! with a reason — a corrupt entry must never decode into plausible but
//! wrong statistics.

use ooo_sim::SimStats;
use trace_isa::fingerprint128;

/// First line of every entry file.
const MAGIC: &str = "SAMIE-STORE v1";

/// The cached outcome of one simulated point.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPoint {
    /// Full simulation statistics of the measured interval. Every
    /// counter is a `u64`, so the round trip is exact and derived floats
    /// (IPC, energy) recompute bit-identically from a cache hit.
    pub stats: SimStats,
    /// Host wall-clock nanoseconds the original computation took — what a
    /// warm sweep saves, and the basis of the reported warm/cold speedup.
    pub wall_nanos: u64,
    /// Experiment-specific named counters that live outside [`SimStats`]
    /// (e.g. the Figure 4 sizing study's `p99_shared` occupancy
    /// quantile), in insertion order. Names must be single tokens
    /// (no whitespace).
    pub extras: Vec<(String, u64)>,
}

/// Visit every [`SimStats`] counter as a `(name, &mut u64)` pair, in the
/// fixed schema order of the entry format.
///
/// This is the single definition of the on-disk statistics schema: encode
/// reads through it, decode writes through it, and adding a field to
/// `SimStats` (or any struct nested in it) without extending the schema
/// fails to compile — see the exhaustive destructurings below.
pub fn visit_stat_fields(s: &mut SimStats, mut f: impl FnMut(&'static str, &mut u64)) {
    // Compile-time exhaustiveness guard: these patterns name every field
    // and deliberately use no `..` rest pattern, so growing SimStats /
    // CacheStats / LsqActivity / CamActivity / OccupancyIntegrals without
    // updating the `field!` list (and bumping the schema expectations)
    // is a compile error here, not a silently-zeroed counter decoded
    // from stale store entries.
    {
        let SimStats {
            cycles: _,
            committed: _,
            loads: _,
            stores: _,
            branches: _,
            mispredicts: _,
            deadlock_flushes: _,
            nospace_flushes: _,
            forwarded_loads: _,
            fetch_blocked_cycles: _,
            l1d,
            l2: _,
            l1i: _,
            dtlb_accesses: _,
            dtlb_misses: _,
            lsq,
        } = &*s;
        let mem_hier::CacheStats {
            read_accesses: _,
            write_accesses: _,
            read_hits: _,
            write_hits: _,
            evictions: _,
            writebacks: _,
            way_known_accesses: _,
        } = l1d;
        let samie_lsq::LsqActivity {
            conv_addr,
            conv_data_rw: _,
            dist_addr: _,
            dist_age: _,
            dist_age_rw: _,
            dist_data_rw: _,
            dist_tlb_rw: _,
            dist_lineid_rw: _,
            bus_sends: _,
            shared_addr: _,
            shared_age: _,
            shared_age_rw: _,
            shared_data_rw: _,
            shared_tlb_rw: _,
            shared_lineid_rw: _,
            abuf_data_rw: _,
            abuf_age_rw: _,
            occupancy,
            forwards: _,
            abuf_inserts: _,
            abuf_busy_cycles: _,
        } = lsq;
        let samie_lsq::CamActivity {
            cmp_ops: _,
            cmp_operands: _,
            reads_writes: _,
        } = conv_addr;
        let samie_lsq::OccupancyIntegrals {
            cycles: _,
            conv_entries: _,
            dist_entries: _,
            dist_slots: _,
            shared_entries: _,
            shared_slots: _,
            abuf_slots: _,
        } = occupancy;
    }
    macro_rules! field {
        ($name:literal, $($p:ident).+) => {
            f($name, &mut s.$($p).+)
        };
    }
    field!("cycles", cycles);
    field!("committed", committed);
    field!("loads", loads);
    field!("stores", stores);
    field!("branches", branches);
    field!("mispredicts", mispredicts);
    field!("deadlock_flushes", deadlock_flushes);
    field!("nospace_flushes", nospace_flushes);
    field!("forwarded_loads", forwarded_loads);
    field!("fetch_blocked_cycles", fetch_blocked_cycles);
    field!("l1d.read_accesses", l1d.read_accesses);
    field!("l1d.write_accesses", l1d.write_accesses);
    field!("l1d.read_hits", l1d.read_hits);
    field!("l1d.write_hits", l1d.write_hits);
    field!("l1d.evictions", l1d.evictions);
    field!("l1d.writebacks", l1d.writebacks);
    field!("l1d.way_known_accesses", l1d.way_known_accesses);
    field!("l2.read_accesses", l2.read_accesses);
    field!("l2.write_accesses", l2.write_accesses);
    field!("l2.read_hits", l2.read_hits);
    field!("l2.write_hits", l2.write_hits);
    field!("l2.evictions", l2.evictions);
    field!("l2.writebacks", l2.writebacks);
    field!("l2.way_known_accesses", l2.way_known_accesses);
    field!("l1i.read_accesses", l1i.read_accesses);
    field!("l1i.write_accesses", l1i.write_accesses);
    field!("l1i.read_hits", l1i.read_hits);
    field!("l1i.write_hits", l1i.write_hits);
    field!("l1i.evictions", l1i.evictions);
    field!("l1i.writebacks", l1i.writebacks);
    field!("l1i.way_known_accesses", l1i.way_known_accesses);
    field!("dtlb_accesses", dtlb_accesses);
    field!("dtlb_misses", dtlb_misses);
    field!("lsq.conv_addr.cmp_ops", lsq.conv_addr.cmp_ops);
    field!("lsq.conv_addr.cmp_operands", lsq.conv_addr.cmp_operands);
    field!("lsq.conv_addr.reads_writes", lsq.conv_addr.reads_writes);
    field!("lsq.conv_data_rw", lsq.conv_data_rw);
    field!("lsq.dist_addr.cmp_ops", lsq.dist_addr.cmp_ops);
    field!("lsq.dist_addr.cmp_operands", lsq.dist_addr.cmp_operands);
    field!("lsq.dist_addr.reads_writes", lsq.dist_addr.reads_writes);
    field!("lsq.dist_age.cmp_ops", lsq.dist_age.cmp_ops);
    field!("lsq.dist_age.cmp_operands", lsq.dist_age.cmp_operands);
    field!("lsq.dist_age.reads_writes", lsq.dist_age.reads_writes);
    field!("lsq.dist_age_rw", lsq.dist_age_rw);
    field!("lsq.dist_data_rw", lsq.dist_data_rw);
    field!("lsq.dist_tlb_rw", lsq.dist_tlb_rw);
    field!("lsq.dist_lineid_rw", lsq.dist_lineid_rw);
    field!("lsq.bus_sends", lsq.bus_sends);
    field!("lsq.shared_addr.cmp_ops", lsq.shared_addr.cmp_ops);
    field!("lsq.shared_addr.cmp_operands", lsq.shared_addr.cmp_operands);
    field!("lsq.shared_addr.reads_writes", lsq.shared_addr.reads_writes);
    field!("lsq.shared_age.cmp_ops", lsq.shared_age.cmp_ops);
    field!("lsq.shared_age.cmp_operands", lsq.shared_age.cmp_operands);
    field!("lsq.shared_age.reads_writes", lsq.shared_age.reads_writes);
    field!("lsq.shared_age_rw", lsq.shared_age_rw);
    field!("lsq.shared_data_rw", lsq.shared_data_rw);
    field!("lsq.shared_tlb_rw", lsq.shared_tlb_rw);
    field!("lsq.shared_lineid_rw", lsq.shared_lineid_rw);
    field!("lsq.abuf_data_rw", lsq.abuf_data_rw);
    field!("lsq.abuf_age_rw", lsq.abuf_age_rw);
    field!("lsq.occupancy.cycles", lsq.occupancy.cycles);
    field!("lsq.occupancy.conv_entries", lsq.occupancy.conv_entries);
    field!("lsq.occupancy.dist_entries", lsq.occupancy.dist_entries);
    field!("lsq.occupancy.dist_slots", lsq.occupancy.dist_slots);
    field!("lsq.occupancy.shared_entries", lsq.occupancy.shared_entries);
    field!("lsq.occupancy.shared_slots", lsq.occupancy.shared_slots);
    field!("lsq.occupancy.abuf_slots", lsq.occupancy.abuf_slots);
    field!("lsq.forwards", lsq.forwards);
    field!("lsq.abuf_inserts", lsq.abuf_inserts);
    field!("lsq.abuf_busy_cycles", lsq.abuf_busy_cycles);
}

/// Encode one point under its canonical key string.
///
/// # Panics
///
/// Panics if an extra's name contains whitespace (it would corrupt the
/// line format) — extras names are compile-time identifiers in practice.
pub fn encode_entry(key_canonical: &str, point: &StoredPoint) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str("key ");
    out.push_str(key_canonical);
    out.push('\n');
    out.push_str(&format!("wall_nanos {}\n", point.wall_nanos));
    let mut stats = point.stats.clone();
    visit_stat_fields(&mut stats, |name, v| {
        out.push_str(&format!("stat {name} {v}\n"));
    });
    for (name, v) in &point.extras {
        assert!(
            !name.is_empty() && !name.contains(char::is_whitespace),
            "extra name `{name}` must be a single token"
        );
        out.push_str(&format!("extra {name} {v}\n"));
    }
    out.push_str(&format!("sum {:032x}\n", fingerprint128(out.as_bytes())));
    out
}

/// A decoded entry: the canonical key it was stored under plus the point.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedEntry {
    /// Canonical [`crate::PointKey`] string copied from the entry.
    pub key_canonical: String,
    /// The cached point.
    pub point: StoredPoint,
}

/// Decode an entry file, verifying magic, checksum and schema
/// completeness. Returns a human-readable reason on any defect.
pub fn decode_entry(text: &str) -> Result<DecodedEntry, String> {
    // Checksum first: the last line must be exactly `sum <32 lowercase
    // hex digits>\n` over everything before it, so truncation and bit rot
    // fail before field parsing (and the accepted encoding is canonical —
    // no whitespace variants alias to the same entry).
    let stripped = text
        .strip_suffix('\n')
        .ok_or("entry does not end with a newline")?;
    let body_end = stripped.rfind('\n').ok_or("entry too short")?;
    let (body, sum_line) = text.split_at(body_end + 1);
    let sum_hex = sum_line
        .strip_suffix('\n')
        .and_then(|l| l.strip_prefix("sum "))
        .ok_or("missing trailing checksum line")?;
    if sum_hex.len() != 32
        || !sum_hex
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err("checksum is not 32 lowercase hex digits".into());
    }
    let claimed = u128::from_str_radix(sum_hex, 16).map_err(|_| "unparsable checksum")?;
    let actual = fingerprint128(body.as_bytes());
    if claimed != actual {
        return Err(format!(
            "checksum mismatch (stored {claimed:032x}, content {actual:032x}) — truncated or corrupt entry"
        ));
    }

    let mut lines = body.lines();
    if lines.next() != Some(MAGIC) {
        return Err(format!("bad magic (expected `{MAGIC}`)"));
    }
    let key_canonical = lines
        .next()
        .and_then(|l| l.strip_prefix("key "))
        .ok_or("missing key line")?
        .to_string();
    let wall_nanos: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("wall_nanos "))
        .and_then(|v| v.parse().ok())
        .ok_or("missing or unparsable wall_nanos line")?;

    let mut stat_values: Vec<(&str, u64)> = Vec::with_capacity(70);
    let mut extras = Vec::new();
    for line in lines {
        if let Some(rest) = line.strip_prefix("stat ") {
            let (name, v) = parse_pair(rest)?;
            stat_values.push((name, v));
        } else if let Some(rest) = line.strip_prefix("extra ") {
            let (name, v) = parse_pair(rest)?;
            extras.push((name.to_string(), v));
        } else {
            return Err(format!("unknown line `{line}`"));
        }
    }

    // Fill the fixed schema; every counter must appear exactly once and
    // nothing may be left over.
    let mut stats = SimStats::default();
    let mut missing = Vec::new();
    let mut cursor = 0usize;
    let mut out_of_order = false;
    visit_stat_fields(&mut stats, |name, slot| {
        // Encode emits schema order, so the common case is a straight
        // scan; fall back to search to diagnose rather than to accept.
        match stat_values.get(cursor) {
            Some(&(n, v)) if n == name => {
                *slot = v;
                cursor += 1;
            }
            _ => {
                if let Some(&(_, v)) = stat_values.iter().find(|&&(n, _)| n == name) {
                    *slot = v;
                    out_of_order = true;
                } else {
                    missing.push(name);
                }
            }
        }
    });
    if !missing.is_empty() {
        return Err(format!("missing counters: {}", missing.join(", ")));
    }
    if out_of_order || cursor != stat_values.len() {
        return Err("counters out of schema order or duplicated".into());
    }

    Ok(DecodedEntry {
        key_canonical,
        point: StoredPoint {
            stats,
            wall_nanos,
            extras,
        },
    })
}

fn parse_pair(rest: &str) -> Result<(&str, u64), String> {
    let (name, v) = rest
        .split_once(' ')
        .ok_or_else(|| format!("malformed line `{rest}`"))?;
    let v = v
        .parse()
        .map_err(|_| format!("unparsable value in `{rest}`"))?;
    Ok((name, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A SimStats with every counter set to a distinct value.
    pub(crate) fn distinct_stats() -> SimStats {
        let mut s = SimStats::default();
        let mut next = 1u64;
        visit_stat_fields(&mut s, |_, v| {
            *v = next;
            next += 7;
        });
        s
    }

    fn sample_point() -> StoredPoint {
        StoredPoint {
            stats: distinct_stats(),
            wall_nanos: 123_456_789,
            extras: vec![("p99_shared".into(), 6), ("filter_hits".into(), 0)],
        }
    }

    #[test]
    fn schema_covers_every_simstats_field() {
        // If a field is added to SimStats without extending the schema,
        // two stats differing only in that field would encode equally.
        let mut count = 0;
        visit_stat_fields(&mut SimStats::default(), |_, _| count += 1);
        assert_eq!(count, 70, "update the schema when SimStats changes");
        // Names are unique.
        let mut names = Vec::new();
        visit_stat_fields(&mut SimStats::default(), |n, _| names.push(n));
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let p = sample_point();
        let text = encode_entry("design=conv:128|seed=1", &p);
        let d = decode_entry(&text).unwrap();
        assert_eq!(d.key_canonical, "design=conv:128|seed=1");
        assert_eq!(d.point, p);
        // Deterministic: same input, same bytes.
        assert_eq!(text, encode_entry("design=conv:128|seed=1", &p));
    }

    #[test]
    fn truncation_and_corruption_fail_loudly() {
        let text = encode_entry("k", &sample_point());
        // Any prefix (even newline-aligned ones) must fail.
        for cut in [0, 10, text.len() / 2, text.len() - 2] {
            assert!(decode_entry(&text[..cut]).is_err(), "cut at {cut}");
        }
        // A single flipped digit anywhere must fail the checksum (or the
        // parse); flip one statistics value.
        let corrupted = text.replacen("stat cycles 1\n", "stat cycles 2\n", 1);
        assert_ne!(corrupted, text, "test must actually corrupt the entry");
        let err = decode_entry(&corrupted).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn missing_and_duplicate_counters_are_rejected() {
        let p = sample_point();
        let text = encode_entry("k", &p);
        // Drop one stat line and re-checksum: schema completeness fails.
        let without: String = text
            .lines()
            .filter(|l| !l.starts_with("stat lsq.forwards ") && !l.starts_with("sum "))
            .map(|l| format!("{l}\n"))
            .collect();
        let resummed = format!("{without}sum {:032x}\n", fingerprint128(without.as_bytes()));
        let err = decode_entry(&resummed).unwrap_err();
        assert!(err.contains("missing counters"), "{err}");
        // Duplicate a line likewise.
        let dup: String = text
            .lines()
            .filter(|l| !l.starts_with("sum "))
            .flat_map(|l| {
                let n = if l.starts_with("stat cycles ") { 2 } else { 1 };
                std::iter::repeat_n(format!("{l}\n"), n)
            })
            .collect();
        let resummed = format!("{dup}sum {:032x}\n", fingerprint128(dup.as_bytes()));
        assert!(decode_entry(&resummed).is_err());
    }

    #[test]
    #[should_panic(expected = "single token")]
    fn extras_with_spaces_are_refused() {
        let mut p = sample_point();
        p.extras.push(("two words".into(), 1));
        encode_entry("k", &p);
    }
}
