//! # exp-store — content-addressed experiment store
//!
//! Every simulated experiment point in this repository is a pure function
//! of its inputs: the LSQ design (canonical `DesignSpec` string), the
//! workload (catalog spec, adversarial generator or `.strc` content
//! digest), the run length, the trace seed, the core configuration and
//! the simulator version. This crate caches the outputs —
//! [`SimStats`](ooo_sim::SimStats) plus optional named extras — on disk,
//! keyed by a stable 128-bit fingerprint of those inputs, so that sweeps
//! and the paper-reproduction harness never recompute a point they have
//! already simulated.
//!
//! Layout of a store directory:
//!
//! ```text
//! <root>/
//!   entries/<32-hex-digit key hash>.point   one atomic text file per point
//!   index.tsv                               append-only listing (inspection)
//! ```
//!
//! Guarantees:
//!
//! * **Exactness** — every stored counter is a `u64`; a cache hit is
//!   byte-identical to recomputing the point (the statistics never pass
//!   through floats).
//! * **Atomicity** — entries are written to a collision-free temp file
//!   (pid + nonce, `O_EXCL`) and published atomically, so an interrupted
//!   sweep leaves only whole entries behind and is resumable.
//! * **Multi-process safety** — [`ExperimentStore::put`] is write-once
//!   per fingerprint path (first publish wins, losers verify-and-discard),
//!   index appends are single `O_APPEND` writes deduplicated by readers,
//!   and [`ExperimentStore::gc`] never reclaims a temp file younger than
//!   [`GC_TEMP_GRACE`] — any number of sweep workers (threads *or*
//!   processes) can share one store directory. This is what the sharded
//!   sweep fabric (`samie-exp sweep --shard i/n` / `--workers N`) builds
//!   on.
//! * **Loud corruption** — entries carry a content checksum and a full
//!   copy of their canonical key; truncation, bit rot and hash collisions
//!   all surface as [`StoreError::Corrupt`], never as silently wrong
//!   statistics.
//! * **Versioning** — keys embed a simulator version
//!   ([`SIM_VERSION`]); stale points simply stop hitting and
//!   [`ExperimentStore::gc`] reclaims them.
//!
//! ```
//! use exp_store::{ExperimentStore, PointKey, StoredPoint, SIM_VERSION};
//! use ooo_sim::SimStats;
//!
//! let dir = std::env::temp_dir().join("exp-store-doctest");
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = ExperimentStore::open(&dir).unwrap();
//!
//! let key = PointKey {
//!     design: "samie:64x2x8:sh8:ab64".into(),
//!     workload: "spec:gzip:0123456789abcdef".into(),
//!     seed: 42,
//!     instrs: 120_000,
//!     warmup: 30_000,
//!     sim_config: "paper".into(),
//!     sim_version: SIM_VERSION.into(),
//! };
//! assert!(store.get(&key).unwrap().is_none(), "cold store misses");
//!
//! let point = StoredPoint {
//!     stats: SimStats { cycles: 1000, committed: 2500, ..SimStats::default() },
//!     wall_nanos: 7_000_000,
//!     extras: vec![("p99_shared".into(), 6)],
//! };
//! store.put(&key, &point).unwrap();
//! let hit = store.get(&key).unwrap().expect("warm store hits");
//! assert_eq!(hit, point, "bit-identical round trip");
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

mod entry;
mod key;
mod store;

pub use entry::{decode_entry, encode_entry, visit_stat_fields, DecodedEntry, StoredPoint};
pub use key::PointKey;
pub use store::{ExperimentStore, GcReport, IndexRow, StoreCounters, StoreError, GC_TEMP_GRACE};

/// Version tag of the simulation semantics baked into store keys.
///
/// Bump this whenever a change alters what any simulated point computes
/// (pipeline behaviour, LSQ placement, trace generation, energy ledger
/// accounting, ...). Old entries then stop matching and can be reclaimed
/// with [`ExperimentStore::gc`]. Pure refactors and new designs/workloads
/// do not require a bump.
pub const SIM_VERSION: &str = "samie-sim-v1";
