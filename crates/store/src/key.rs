//! [`PointKey`] — the full input coordinates of one simulated point.

use trace_isa::fingerprint128;

/// Everything that determines the outcome of one simulated experiment
/// point. Two keys address the same store entry iff every field matches;
/// the content address is [`PointKey::hash128`] over the canonical
/// rendition, and the canonical string itself is stored inside each entry
/// so a (astronomically unlikely) fingerprint collision is detected
/// rather than silently served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointKey {
    /// Canonical design id (`DesignSpec` string / `LsqFactory::id`),
    /// e.g. `samie:64x2x8:sh8:ab64`.
    pub design: String,
    /// Workload cache id (`Workload::cache_id`): `spec:<name>:<fp>`,
    /// `adv:<name>:<fp>` or `strc:<content digest>`.
    pub workload: String,
    /// Trace seed.
    pub seed: u64,
    /// Instructions in the measured interval.
    pub instrs: u64,
    /// Warm-up instructions before measurement.
    pub warmup: u64,
    /// Canonical core/memory configuration (`SimConfig::canonical`).
    pub sim_config: String,
    /// Simulator semantics version ([`crate::SIM_VERSION`]).
    pub sim_version: String,
}

impl PointKey {
    /// The canonical rendition: named fields joined by `|`, hashed for
    /// the content address and stored verbatim in each entry.
    pub fn canonical(&self) -> String {
        format!(
            "design={}|workload={}|seed={}|instrs={}|warmup={}|cfg={}|ver={}",
            self.design,
            self.workload,
            self.seed,
            self.instrs,
            self.warmup,
            self.sim_config,
            self.sim_version
        )
    }

    /// Stable 128-bit content address of this key.
    pub fn hash128(&self) -> u128 {
        fingerprint128(self.canonical().as_bytes())
    }

    /// The entry file name for this key (32 hex digits + `.point`).
    pub fn file_name(&self) -> String {
        format!("{:032x}.point", self.hash128())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> PointKey {
        PointKey {
            design: "conv:128".into(),
            workload: "spec:gzip:00ff".into(),
            seed: 42,
            instrs: 120_000,
            warmup: 30_000,
            sim_config: "paper".into(),
            sim_version: "samie-sim-v1".into(),
        }
    }

    #[test]
    fn canonical_names_every_field() {
        let c = sample().canonical();
        for part in [
            "design=conv:128",
            "workload=spec:gzip:00ff",
            "seed=42",
            "instrs=120000",
            "warmup=30000",
            "cfg=paper",
            "ver=samie-sim-v1",
        ] {
            assert!(c.contains(part), "{c} missing {part}");
        }
    }

    #[test]
    fn file_name_is_hex_of_hash() {
        let k = sample();
        assert_eq!(k.file_name(), format!("{:032x}.point", k.hash128()));
        assert_eq!(k.file_name().len(), 32 + ".point".len());
    }
}
