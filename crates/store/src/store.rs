//! [`ExperimentStore`] — the on-disk store proper: atomic puts, checked
//! gets, an inspection index and garbage collection.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::entry::{decode_entry, encode_entry, StoredPoint};
use crate::key::PointKey;

/// Error from a store operation.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem I/O failed.
    Io(io::Error),
    /// An entry file exists but is truncated, bit-rotten, mis-keyed or
    /// otherwise unusable. The store never silently serves such entries;
    /// callers typically log it and recompute (or run
    /// [`ExperimentStore::gc`]).
    Corrupt {
        /// The offending entry file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "experiment store i/o error: {e}"),
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt store entry {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One line of the inspection index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexRow {
    /// Entry file stem (32 hex digits of the key hash).
    pub hash: String,
    /// Canonical design id.
    pub design: String,
    /// Workload cache id.
    pub workload: String,
    /// Trace seed.
    pub seed: u64,
    /// Measured instructions.
    pub instrs: u64,
    /// Warm-up instructions.
    pub warmup: u64,
    /// Simulator version the point was computed under.
    pub sim_version: String,
}

/// Outcome of [`ExperimentStore::gc`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries kept (current version, intact).
    pub kept: usize,
    /// Entries removed because their simulator version is stale.
    pub removed_stale: usize,
    /// Entries (and stray temp files) removed as corrupt or unreadable.
    pub removed_corrupt: usize,
    /// Disk bytes reclaimed.
    pub bytes_freed: u64,
}

/// A content-addressed, on-disk store of simulated experiment points.
///
/// Thread-safe: `put` writes entries atomically (temp file + rename) and
/// serialises index appends behind a mutex, so sweep workers cache their
/// points as soon as they finish — which is what makes an interrupted
/// sweep resumable. See the [crate docs](crate) for the layout and a
/// usage example.
#[derive(Debug)]
pub struct ExperimentStore {
    root: PathBuf,
    index: Mutex<()>,
    tmp_counter: AtomicU64,
}

impl ExperimentStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let root = dir.into();
        fs::create_dir_all(root.join("entries"))?;
        Ok(ExperimentStore {
            root,
            index: Mutex::new(()),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entries_dir(&self) -> PathBuf {
        self.root.join("entries")
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.tsv")
    }

    fn entry_path(&self, key: &PointKey) -> PathBuf {
        self.entries_dir().join(key.file_name())
    }

    /// Look up a point. `Ok(None)` is a clean miss; [`StoreError::Corrupt`]
    /// means an entry exists for this key's address but cannot be trusted
    /// (including the collision case where it was stored under a
    /// different canonical key).
    pub fn get(&self, key: &PointKey) -> Result<Option<StoredPoint>, StoreError> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let decoded = decode_entry(&text).map_err(|reason| StoreError::Corrupt {
            path: path.clone(),
            reason,
        })?;
        if decoded.key_canonical != key.canonical() {
            return Err(StoreError::Corrupt {
                path,
                reason: format!(
                    "key mismatch: entry holds `{}`, lookup wanted `{}`",
                    decoded.key_canonical,
                    key.canonical()
                ),
            });
        }
        Ok(Some(decoded.point))
    }

    /// Whether a (possibly corrupt) entry exists for `key`.
    pub fn contains(&self, key: &PointKey) -> bool {
        self.entry_path(key).exists()
    }

    /// Store a point under `key`, atomically (write temp + rename), and
    /// append it to the inspection index. Overwrites any previous entry
    /// for the same key.
    pub fn put(&self, key: &PointKey, point: &StoredPoint) -> io::Result<PathBuf> {
        let path = self.entry_path(key);
        let fresh = !path.exists();
        let tmp = self.entries_dir().join(format!(
            ".tmp-{}-{}",
            key.file_name(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, encode_entry(&key.canonical(), point))?;
        fs::rename(&tmp, &path)?;
        if fresh {
            let line = format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                key.file_name().trim_end_matches(".point"),
                key.design,
                key.workload,
                key.seed,
                key.instrs,
                key.warmup,
                key.sim_version
            );
            let _guard = self.index.lock().expect("index lock");
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.index_path())?;
            f.write_all(line.as_bytes())?;
        }
        Ok(path)
    }

    /// Number of entry files currently in the store.
    pub fn len(&self) -> io::Result<usize> {
        Ok(self.entry_files()?.len())
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Total size in bytes of all entry files.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for p in self.entry_files()? {
            total += fs::metadata(&p)?.len();
        }
        Ok(total)
    }

    /// Read the inspection index (one row per stored point, deduplicated,
    /// in insertion order). Malformed lines are skipped — the index is a
    /// convenience listing; the entries are the truth ([`gc`](Self::gc)
    /// rebuilds it from them).
    pub fn index(&self) -> io::Result<Vec<IndexRow>> {
        let text = match fs::read_to_string(self.index_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut seen = std::collections::HashSet::new();
        let mut rows = Vec::new();
        for line in text.lines() {
            let mut it = line.split('\t');
            let (
                Some(hash),
                Some(design),
                Some(workload),
                Some(seed),
                Some(instrs),
                Some(warmup),
                Some(ver),
            ) = (
                it.next(),
                it.next(),
                it.next(),
                it.next(),
                it.next(),
                it.next(),
                it.next(),
            )
            else {
                continue;
            };
            let (Ok(seed), Ok(instrs), Ok(warmup)) = (seed.parse(), instrs.parse(), warmup.parse())
            else {
                continue;
            };
            if seen.insert(hash.to_string()) {
                rows.push(IndexRow {
                    hash: hash.to_string(),
                    design: design.to_string(),
                    workload: workload.to_string(),
                    seed,
                    instrs,
                    warmup,
                    sim_version: ver.to_string(),
                });
            }
        }
        Ok(rows)
    }

    /// Garbage-collect: delete corrupt entries, stray temp files and
    /// entries computed under a simulator version other than
    /// `current_version`, then rebuild the index from the survivors.
    pub fn gc(&self, current_version: &str) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        let mut survivors: Vec<String> = Vec::new();
        let _guard = self.index.lock().expect("index lock");
        for path in self.entry_files_and_temps()? {
            let size = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(".tmp-") {
                fs::remove_file(&path)?;
                report.removed_corrupt += 1;
                report.bytes_freed += size;
                continue;
            }
            let decoded = fs::read_to_string(&path)
                .ok()
                .and_then(|t| decode_entry(&t).ok());
            match decoded {
                None => {
                    fs::remove_file(&path)?;
                    report.removed_corrupt += 1;
                    report.bytes_freed += size;
                }
                Some(d) => {
                    let ver = d
                        .key_canonical
                        .rsplit_once("|ver=")
                        .map(|(_, v)| v)
                        .unwrap_or("");
                    if ver != current_version {
                        fs::remove_file(&path)?;
                        report.removed_stale += 1;
                        report.bytes_freed += size;
                    } else {
                        report.kept += 1;
                        survivors.push(index_line_from_canonical(name, &d.key_canonical));
                    }
                }
            }
        }
        survivors.sort();
        fs::write(self.index_path(), survivors.concat())?;
        Ok(report)
    }

    fn entry_files(&self) -> io::Result<Vec<PathBuf>> {
        Ok(self
            .entry_files_and_temps()?
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "point"))
            .collect())
    }

    fn entry_files_and_temps(&self) -> io::Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = fs::read_dir(self.entries_dir())?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        Ok(files)
    }
}

/// Rebuild an index line from an entry's canonical key string.
fn index_line_from_canonical(file_name: &str, canonical: &str) -> String {
    let field = |tag: &str| {
        canonical
            .split('|')
            .find_map(|part| part.strip_prefix(tag))
            .unwrap_or("")
            .to_string()
    };
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        file_name.trim_end_matches(".point"),
        field("design="),
        field("workload="),
        field("seed="),
        field("instrs="),
        field("warmup="),
        field("ver=")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_sim::SimStats;

    fn tmp_store(tag: &str) -> ExperimentStore {
        let dir = std::env::temp_dir().join(format!("exp-store-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        ExperimentStore::open(dir).unwrap()
    }

    fn key(design: &str, seed: u64, ver: &str) -> PointKey {
        PointKey {
            design: design.into(),
            workload: "spec:gzip:00".into(),
            seed,
            instrs: 1000,
            warmup: 100,
            sim_config: "paper".into(),
            sim_version: ver.into(),
        }
    }

    fn point(cycles: u64) -> StoredPoint {
        StoredPoint {
            stats: SimStats {
                cycles,
                committed: cycles * 2,
                ..SimStats::default()
            },
            wall_nanos: 5_000,
            extras: vec![],
        }
    }

    #[test]
    fn put_get_and_index() {
        let store = tmp_store("basic");
        let k = key("conv:128", 1, "v1");
        assert!(store.get(&k).unwrap().is_none());
        assert!(store.is_empty().unwrap());
        store.put(&k, &point(10)).unwrap();
        assert_eq!(store.get(&k).unwrap().unwrap(), point(10));
        assert_eq!(store.len().unwrap(), 1);
        assert!(store.disk_bytes().unwrap() > 0);
        // Overwrite does not duplicate the index.
        store.put(&k, &point(11)).unwrap();
        assert_eq!(store.get(&k).unwrap().unwrap().stats.cycles, 11);
        let idx = store.index().unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx[0].design, "conv:128");
        assert_eq!(idx[0].seed, 1);
    }

    #[test]
    fn corrupt_entries_error_loudly() {
        let store = tmp_store("corrupt");
        let k = key("samie", 2, "v1");
        let path = store.put(&k, &point(42)).unwrap();
        // Truncate the entry in place.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = store.get(&k).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("corrupt store entry"));
        // A key collision (same file, different canonical key) is also
        // rejected rather than served.
        fs::write(
            &path,
            encode_entry(&key("other", 9, "v1").canonical(), &point(1)),
        )
        .unwrap();
        let err = store.get(&k).unwrap_err();
        assert!(err.to_string().contains("key mismatch"), "{err}");
    }

    #[test]
    fn gc_reclaims_stale_and_corrupt() {
        let store = tmp_store("gc");
        store.put(&key("conv:128", 1, "v1"), &point(1)).unwrap();
        store.put(&key("conv:128", 2, "v0"), &point(2)).unwrap();
        let corrupt_path = store.put(&key("samie", 3, "v1"), &point(3)).unwrap();
        fs::write(&corrupt_path, "garbage").unwrap();
        fs::write(store.entries_dir().join(".tmp-leftover-0"), "x").unwrap();

        let report = store.gc("v1").unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed_stale, 1);
        assert_eq!(report.removed_corrupt, 2, "corrupt entry + stray temp");
        assert!(report.bytes_freed > 0);
        assert_eq!(store.len().unwrap(), 1);
        // Index was rebuilt from the survivors.
        let idx = store.index().unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx[0].seed, 1);
        assert_eq!(idx[0].sim_version, "v1");
    }

    #[test]
    fn concurrent_puts_from_many_threads() {
        let store = tmp_store("parallel");
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..16 {
                        let k = key("conv:64", t * 100 + i, "v1");
                        store.put(&k, &point(t * 100 + i)).unwrap();
                        assert!(store.get(&k).unwrap().is_some());
                    }
                });
            }
        });
        assert_eq!(store.len().unwrap(), 128);
        assert_eq!(store.index().unwrap().len(), 128);
    }
}
