//! [`ExperimentStore`] — the on-disk store proper: atomic puts, checked
//! gets, an inspection index and garbage collection.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::entry::{decode_entry, encode_entry, visit_stat_fields, StoredPoint};
use crate::key::PointKey;

/// How long a stray `.tmp-*` file is protected from
/// [`ExperimentStore::gc`]: a temp file younger than this may belong to a
/// concurrent writer in another process that has not renamed it into
/// place yet, so gc leaves it alone. Entry writes take milliseconds, so
/// anything older than this is an orphan from a crashed writer.
pub const GC_TEMP_GRACE: Duration = Duration::from_secs(15 * 60);

/// Error from a store operation.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem I/O failed.
    Io(io::Error),
    /// An entry file exists but is truncated, bit-rotten, mis-keyed or
    /// otherwise unusable. The store never silently serves such entries;
    /// callers typically log it and recompute (or run
    /// [`ExperimentStore::gc`]).
    Corrupt {
        /// The offending entry file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "experiment store i/o error: {e}"),
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt store entry {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One line of the inspection index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexRow {
    /// Entry file stem (32 hex digits of the key hash).
    pub hash: String,
    /// Canonical design id.
    pub design: String,
    /// Workload cache id.
    pub workload: String,
    /// Trace seed.
    pub seed: u64,
    /// Measured instructions.
    pub instrs: u64,
    /// Warm-up instructions.
    pub warmup: u64,
    /// Simulator version the point was computed under.
    pub sim_version: String,
}

/// Outcome of [`ExperimentStore::gc`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries kept (current version, intact).
    pub kept: usize,
    /// Entries removed because their simulator version is stale.
    pub removed_stale: usize,
    /// Entries (and stray temp files) removed as corrupt or unreadable.
    pub removed_corrupt: usize,
    /// Temp files left alone because they are younger than the grace age
    /// — a writer in another process may still own them.
    pub kept_temps: usize,
    /// Disk bytes reclaimed.
    pub bytes_freed: u64,
}

/// A snapshot of one store handle's write-path counters (see
/// [`ExperimentStore::counters`]). The counts are per-handle, not
/// per-directory: they tell a server (or test) what *this* process did —
/// how often its writes published fresh entries versus collapsed into a
/// concurrent winner's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Entries this handle published first (won the write-once race or
    /// wrote an uncontended key).
    pub published: u64,
    /// Writes that lost the write-once race to an intact concurrent
    /// entry and were verified-and-discarded — the store-level
    /// deduplication the serving layer reports.
    pub deduped: u64,
    /// Corrupt or mis-keyed entries healed in place by a fresh copy.
    pub healed: u64,
    /// Deliberate overwrites through [`ExperimentStore::put_replace`].
    pub replaced: u64,
}

/// Take the in-process index lock, recovering from poison: the lock
/// only serializes index writes within this process (cross-process
/// safety comes from `O_APPEND`), and a panicked writer leaves the
/// index file merely stale — `rebuild_index` regenerates it.
fn lock_index(m: &Mutex<()>) -> std::sync::MutexGuard<'_, ()> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A content-addressed, on-disk store of simulated experiment points.
///
/// Safe for concurrent writers in many **threads and processes** sharing
/// one store directory:
///
/// * [`put`](Self::put) is **write-once** on each fingerprint path — the
///   first fully-written entry wins (an atomic hard-link publish) and
///   racing losers verify the winner's entry and discard their own, so
///   two processes computing the same point can never corrupt it;
/// * temp files are collision-free (pid + per-process nonce, created
///   with `O_EXCL`) and [`gc`](Self::gc) refuses to reclaim temp files
///   younger than [`GC_TEMP_GRACE`], so it cannot destroy another
///   process's in-flight write;
/// * index appends are a single `O_APPEND` write by the publishing
///   winner only; readers deduplicate, and the index is a convenience
///   that [`rebuild_index`](Self::rebuild_index) / [`gc`](Self::gc)
///   regenerate from the entries (the durable truth) at any time.
///
/// Sweep workers cache their points as soon as they finish — which is
/// what makes an interrupted sweep resumable and a multi-process sharded
/// sweep mergeable. See the [crate docs](crate) for the layout and a
/// usage example.
#[derive(Debug)]
pub struct ExperimentStore {
    root: PathBuf,
    index: Mutex<()>,
    tmp_counter: AtomicU64,
    read_only: bool,
    published: AtomicU64,
    deduped: AtomicU64,
    healed: AtomicU64,
    replaced: AtomicU64,
}

impl ExperimentStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let root = dir.into();
        fs::create_dir_all(root.join("entries"))?;
        Ok(Self::handle(root, false))
    }

    /// Open an **existing** store without write access: refuses to
    /// create the directory (a missing store is `NotFound`, never
    /// silently materialised empty), and every mutating call —
    /// [`put`](Self::put), [`put_replace`](Self::put_replace) — fails
    /// with `PermissionDenied`. The read-mostly handle for inspection
    /// tools and serving-layer fast paths.
    pub fn open_read_only(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let root = dir.into();
        if !root.join("entries").is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no experiment store at {}", root.display()),
            ));
        }
        Ok(Self::handle(root, true))
    }

    fn handle(root: PathBuf, read_only: bool) -> Self {
        ExperimentStore {
            root,
            index: Mutex::new(()),
            tmp_counter: AtomicU64::new(0),
            read_only,
            published: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            healed: AtomicU64::new(0),
            replaced: AtomicU64::new(0),
        }
    }

    /// Whether this handle was opened with [`open_read_only`](Self::open_read_only).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Snapshot this handle's write-path counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            published: self.published.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            healed: self.healed.load(Ordering::Relaxed),
            replaced: self.replaced.load(Ordering::Relaxed),
        }
    }

    fn deny_if_read_only(&self) -> io::Result<()> {
        if self.read_only {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!(
                    "experiment store {} was opened read-only",
                    self.root.display()
                ),
            ));
        }
        Ok(())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entries_dir(&self) -> PathBuf {
        self.root.join("entries")
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.tsv")
    }

    fn entry_path(&self, key: &PointKey) -> PathBuf {
        self.entries_dir().join(key.file_name())
    }

    /// Look up a point. `Ok(None)` is a clean miss; [`StoreError::Corrupt`]
    /// means an entry exists for this key's address but cannot be trusted
    /// (including the collision case where it was stored under a
    /// different canonical key).
    pub fn get(&self, key: &PointKey) -> Result<Option<StoredPoint>, StoreError> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let decoded = decode_entry(&text).map_err(|reason| StoreError::Corrupt {
            path: path.clone(),
            reason,
        })?;
        if decoded.key_canonical != key.canonical() {
            return Err(StoreError::Corrupt {
                path,
                reason: format!(
                    "key mismatch: entry holds `{}`, lookup wanted `{}`",
                    decoded.key_canonical,
                    key.canonical()
                ),
            });
        }
        Ok(Some(decoded.point))
    }

    /// Whether a (possibly corrupt) entry exists for `key`.
    pub fn contains(&self, key: &PointKey) -> bool {
        self.entry_path(key).exists()
    }

    /// [`contains`](Self::contains) by entry file name
    /// ([`PointKey::file_name`]) — for callers that pre-computed the
    /// fingerprints of many keys (e.g. the serving layer's dedup
    /// ledger).
    pub fn contains_file(&self, file_name: &str) -> bool {
        self.entries_dir().join(file_name).exists()
    }

    /// Store a point under `key`, **write-once**: the first fully-written
    /// entry for a fingerprint path wins and is appended to the
    /// inspection index; a racing loser verifies that the winner's entry
    /// is intact for this key, discards its own copy and returns the
    /// shared path. (Points are pure functions of their key, so the
    /// winner's entry is equivalent — only `wall_nanos`/extras can
    /// differ.) An existing entry that turns out to be corrupt is healed
    /// in place. Use [`put_replace`](Self::put_replace) to overwrite an
    /// intact entry deliberately.
    pub fn put(&self, key: &PointKey, point: &StoredPoint) -> io::Result<PathBuf> {
        self.deny_if_read_only()?;
        let path = self.entry_path(key);
        let tmp = self.write_temp(key, point)?;
        // A hard link publishes the finished temp file atomically and
        // fails with `AlreadyExists` instead of overwriting — exactly
        // the first-rename-wins semantics a cross-process race needs
        // (plain `rename` would silently replace the winner).
        for _ in 0..8 {
            match fs::hard_link(&tmp, &path) {
                Ok(()) => {
                    let _ = fs::remove_file(&tmp);
                    self.append_index(key)?;
                    self.published.fetch_add(1, Ordering::Relaxed);
                    return Ok(path);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => match self.get(key) {
                    Ok(Some(_)) => {
                        // Lost the race to an intact equivalent entry:
                        // verify-and-discard.
                        let _ = fs::remove_file(&tmp);
                        self.deduped.fetch_add(1, Ordering::Relaxed);
                        return Ok(path);
                    }
                    // The entry vanished between the failed link and the
                    // verify (concurrent gc): retry the publish.
                    Ok(None) => continue,
                    Err(_) => {
                        // The existing entry is corrupt or mis-keyed:
                        // heal it with our complete copy.
                        fs::rename(&tmp, &path)?;
                        self.append_index(key)?;
                        self.healed.fetch_add(1, Ordering::Relaxed);
                        return Ok(path);
                    }
                },
                // Filesystems without hard links degrade to an atomic
                // rename (last writer wins, entries still always whole).
                Err(_) => {
                    fs::rename(&tmp, &path)?;
                    self.append_index(key)?;
                    self.published.fetch_add(1, Ordering::Relaxed);
                    return Ok(path);
                }
            }
        }
        fs::rename(&tmp, &path)?;
        self.append_index(key)?;
        self.published.fetch_add(1, Ordering::Relaxed);
        Ok(path)
    }

    /// Store a point under `key`, atomically **replacing** any previous
    /// entry (temp + rename). This is the refresh path — e.g. re-storing
    /// a point with merged extras, or after the old entry was rejected as
    /// corrupt; plain caching should use the write-once
    /// [`put`](Self::put).
    pub fn put_replace(&self, key: &PointKey, point: &StoredPoint) -> io::Result<PathBuf> {
        self.deny_if_read_only()?;
        let path = self.entry_path(key);
        let existed = path.exists();
        let tmp = self.write_temp(key, point)?;
        fs::rename(&tmp, &path)?;
        if !existed {
            self.append_index(key)?;
        }
        self.replaced.fetch_add(1, Ordering::Relaxed);
        Ok(path)
    }

    /// Write the encoded entry to a collision-free temp file in the
    /// entries directory. The name embeds the pid and a per-process nonce
    /// and the file is opened with `create_new` (`O_EXCL`), so two
    /// processes — even two incarnations of the same pid — can never
    /// interleave writes into one temp file.
    fn write_temp(&self, key: &PointKey, point: &StoredPoint) -> io::Result<PathBuf> {
        let pid = std::process::id();
        loop {
            let nonce = self.tmp_counter.fetch_add(1, Ordering::Relaxed);
            let tmp = self
                .entries_dir()
                .join(format!(".tmp-{}-{pid}-{nonce}", key.file_name()));
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&tmp)
            {
                Ok(mut f) => {
                    f.write_all(encode_entry(&key.canonical(), point).as_bytes())?;
                    return Ok(tmp);
                }
                // A leftover temp from a crashed run with our pid: take
                // the next nonce.
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Append `key`'s row to the inspection index as one `O_APPEND`
    /// write — atomic across processes for a line this size, so
    /// concurrent appenders can duplicate rows but never interleave
    /// bytes. Readers ([`index`](Self::index)) deduplicate.
    fn append_index(&self, key: &PointKey) -> io::Result<()> {
        let line = format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            key.file_name().trim_end_matches(".point"),
            key.design,
            key.workload,
            key.seed,
            key.instrs,
            key.warmup,
            key.sim_version
        );
        let _guard = lock_index(&self.index);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.index_path())?;
        f.write_all(line.as_bytes())
    }

    /// Number of entry files currently in the store.
    pub fn len(&self) -> io::Result<usize> {
        Ok(self.entry_files()?.len())
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Total size in bytes of all entry files.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for p in self.entry_files()? {
            total += fs::metadata(&p)?.len();
        }
        Ok(total)
    }

    /// Read the inspection index (one row per stored point, deduplicated,
    /// in insertion order). Duplicate rows — the benign residue of
    /// concurrent appenders racing on one store — collapse to the first
    /// occurrence, and malformed lines are skipped: the index is a
    /// convenience listing; the entries are the truth
    /// ([`rebuild_index`](Self::rebuild_index) and [`gc`](Self::gc)
    /// regenerate it from them).
    pub fn index(&self) -> io::Result<Vec<IndexRow>> {
        let text = match fs::read_to_string(self.index_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut seen = std::collections::BTreeSet::new();
        let mut rows = Vec::new();
        for line in text.lines() {
            let mut it = line.split('\t');
            let (
                Some(hash),
                Some(design),
                Some(workload),
                Some(seed),
                Some(instrs),
                Some(warmup),
                Some(ver),
            ) = (
                it.next(),
                it.next(),
                it.next(),
                it.next(),
                it.next(),
                it.next(),
                it.next(),
            )
            else {
                continue;
            };
            let (Ok(seed), Ok(instrs), Ok(warmup)) = (seed.parse(), instrs.parse(), warmup.parse())
            else {
                continue;
            };
            if seen.insert(hash.to_string()) {
                rows.push(IndexRow {
                    hash: hash.to_string(),
                    design: design.to_string(),
                    workload: workload.to_string(),
                    seed,
                    instrs,
                    warmup,
                    sim_version: ver.to_string(),
                });
            }
        }
        Ok(rows)
    }

    /// Garbage-collect: delete corrupt entries, orphaned temp files and
    /// entries computed under a simulator version other than
    /// `current_version`, then rebuild the index from the survivors.
    ///
    /// Temp files younger than [`GC_TEMP_GRACE`] are **never** reclaimed
    /// — they may be another process's in-flight write; use
    /// [`gc_with_temp_grace`](Self::gc_with_temp_grace) to choose the
    /// grace age explicitly.
    pub fn gc(&self, current_version: &str) -> io::Result<GcReport> {
        self.gc_with_temp_grace(current_version, GC_TEMP_GRACE)
    }

    /// [`gc`](Self::gc) with an explicit temp-file grace age: temp files
    /// whose mtime is younger than `temp_grace` are kept (counted in
    /// [`GcReport::kept_temps`]), everything older is reclaimed as an
    /// orphan of a crashed writer.
    pub fn gc_with_temp_grace(
        &self,
        current_version: &str,
        temp_grace: Duration,
    ) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        let mut survivors: Vec<String> = Vec::new();
        let _guard = lock_index(&self.index);
        for path in self.entry_files_and_temps()? {
            let size = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(".tmp-") {
                // A young temp may be a concurrent writer's in-flight
                // entry (an unreadable mtime counts as young — when in
                // doubt, never destroy another process's work).
                let age = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    // samie-allow(wall-clock): gc's temp-file grace period is host file mtime age by design — it protects other processes' in-flight writes, not simulated time
                    .and_then(|t| t.elapsed().ok());
                if age.is_none_or(|a| a < temp_grace) {
                    report.kept_temps += 1;
                    continue;
                }
                fs::remove_file(&path)?;
                report.removed_corrupt += 1;
                report.bytes_freed += size;
                continue;
            }
            let decoded = fs::read_to_string(&path)
                .ok()
                .and_then(|t| decode_entry(&t).ok());
            match decoded {
                None => {
                    fs::remove_file(&path)?;
                    report.removed_corrupt += 1;
                    report.bytes_freed += size;
                }
                Some(d) => {
                    let ver = d
                        .key_canonical
                        .rsplit_once("|ver=")
                        .map(|(_, v)| v)
                        .unwrap_or("");
                    if ver != current_version {
                        fs::remove_file(&path)?;
                        report.removed_stale += 1;
                        report.bytes_freed += size;
                    } else {
                        report.kept += 1;
                        survivors.push(index_line_from_canonical(name, &d.key_canonical));
                    }
                }
            }
        }
        survivors.sort();
        fs::write(self.index_path(), survivors.concat())?;
        Ok(report)
    }

    /// Rewrite the inspection index from the entry files (sorted by
    /// hash), dropping duplicate and stale rows without deleting
    /// anything. Returns the number of indexed entries. Undecodable
    /// entries are skipped — [`gc`](Self::gc) is the tool that removes
    /// them.
    pub fn rebuild_index(&self) -> io::Result<usize> {
        let mut lines: Vec<String> = Vec::new();
        for path in self.entry_files()? {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(d) = fs::read_to_string(&path)
                .ok()
                .and_then(|t| decode_entry(&t).ok())
            {
                lines.push(index_line_from_canonical(name, &d.key_canonical));
            }
        }
        lines.sort();
        let n = lines.len();
        let _guard = lock_index(&self.index);
        fs::write(self.index_path(), lines.concat())?;
        Ok(n)
    }

    /// Render every stored point as deterministic text: entries sorted
    /// by canonical key, each as a `key` line followed by `stat`/`extra`
    /// lines, with the wall-clock field (the one non-deterministic byte
    /// of an entry) omitted. Two stores hold equivalent results — no
    /// matter which processes filled them, in what order, or how often
    /// writers raced — exactly when their dumps are byte-identical;
    /// CI diffs a served store against a direct sweep's this way. A
    /// corrupt entry fails the dump rather than vanishing from it.
    pub fn dump_deterministic(&self) -> Result<String, StoreError> {
        let mut entries = Vec::new();
        for path in self.entry_files()? {
            let text = fs::read_to_string(&path).map_err(StoreError::Io)?;
            let decoded = decode_entry(&text).map_err(|reason| StoreError::Corrupt {
                path: path.clone(),
                reason,
            })?;
            entries.push(decoded);
        }
        entries.sort_by(|a, b| a.key_canonical.cmp(&b.key_canonical));
        let mut out = String::new();
        for mut e in entries {
            out.push_str("key ");
            out.push_str(&e.key_canonical);
            out.push('\n');
            visit_stat_fields(&mut e.point.stats, |name, v| {
                out.push_str(&format!("stat {name} {v}\n"));
            });
            for (name, v) in &e.point.extras {
                out.push_str(&format!("extra {name} {v}\n"));
            }
        }
        Ok(out)
    }

    fn entry_files(&self) -> io::Result<Vec<PathBuf>> {
        Ok(self
            .entry_files_and_temps()?
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "point"))
            .collect())
    }

    fn entry_files_and_temps(&self) -> io::Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = fs::read_dir(self.entries_dir())?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        Ok(files)
    }
}

/// Rebuild an index line from an entry's canonical key string.
fn index_line_from_canonical(file_name: &str, canonical: &str) -> String {
    let field = |tag: &str| {
        canonical
            .split('|')
            .find_map(|part| part.strip_prefix(tag))
            .unwrap_or("")
            .to_string()
    };
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        file_name.trim_end_matches(".point"),
        field("design="),
        field("workload="),
        field("seed="),
        field("instrs="),
        field("warmup="),
        field("ver=")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooo_sim::SimStats;

    fn tmp_store(tag: &str) -> ExperimentStore {
        let dir = std::env::temp_dir().join(format!("exp-store-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        ExperimentStore::open(dir).unwrap()
    }

    fn key(design: &str, seed: u64, ver: &str) -> PointKey {
        PointKey {
            design: design.into(),
            workload: "spec:gzip:00".into(),
            seed,
            instrs: 1000,
            warmup: 100,
            sim_config: "paper".into(),
            sim_version: ver.into(),
        }
    }

    fn point(cycles: u64) -> StoredPoint {
        StoredPoint {
            stats: SimStats {
                cycles,
                committed: cycles * 2,
                ..SimStats::default()
            },
            wall_nanos: 5_000,
            extras: vec![],
        }
    }

    #[test]
    fn put_get_and_index() {
        let store = tmp_store("basic");
        let k = key("conv:128", 1, "v1");
        assert!(store.get(&k).unwrap().is_none());
        assert!(store.is_empty().unwrap());
        store.put(&k, &point(10)).unwrap();
        assert_eq!(store.get(&k).unwrap().unwrap(), point(10));
        assert_eq!(store.len().unwrap(), 1);
        assert!(store.disk_bytes().unwrap() > 0);
        // put is write-once: a second writer loses the race, verifies the
        // winner's entry and discards its own (no temp file left behind).
        store.put(&k, &point(11)).unwrap();
        assert_eq!(store.get(&k).unwrap().unwrap().stats.cycles, 10);
        // put_replace deliberately refreshes; neither path duplicates the
        // index.
        store.put_replace(&k, &point(11)).unwrap();
        assert_eq!(store.get(&k).unwrap().unwrap().stats.cycles, 11);
        let idx = store.index().unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx[0].design, "conv:128");
        assert_eq!(idx[0].seed, 1);
        // No stray temps after any of the puts.
        let temps: Vec<_> = fs::read_dir(store.entries_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(temps.is_empty(), "{temps:?}");
    }

    #[test]
    fn put_heals_a_corrupt_loser_entry() {
        let store = tmp_store("heal");
        let k = key("conv:128", 7, "v1");
        let path = store.put(&k, &point(1)).unwrap();
        fs::write(&path, "garbage").unwrap();
        // The write-once loser path detects the corruption and replaces
        // the entry instead of discarding its fresh copy.
        store.put(&k, &point(2)).unwrap();
        assert_eq!(store.get(&k).unwrap().unwrap().stats.cycles, 2);
    }

    #[test]
    fn corrupt_entries_error_loudly() {
        let store = tmp_store("corrupt");
        let k = key("samie", 2, "v1");
        let path = store.put(&k, &point(42)).unwrap();
        // Truncate the entry in place.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = store.get(&k).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("corrupt store entry"));
        // A key collision (same file, different canonical key) is also
        // rejected rather than served.
        fs::write(
            &path,
            encode_entry(&key("other", 9, "v1").canonical(), &point(1)),
        )
        .unwrap();
        let err = store.get(&k).unwrap_err();
        assert!(err.to_string().contains("key mismatch"), "{err}");
    }

    #[test]
    fn gc_reclaims_stale_and_corrupt() {
        let store = tmp_store("gc");
        store.put(&key("conv:128", 1, "v1"), &point(1)).unwrap();
        store.put(&key("conv:128", 2, "v0"), &point(2)).unwrap();
        let corrupt_path = store.put(&key("samie", 3, "v1"), &point(3)).unwrap();
        fs::write(&corrupt_path, "garbage").unwrap();
        fs::write(store.entries_dir().join(".tmp-leftover-0"), "x").unwrap();

        let report = store.gc_with_temp_grace("v1", Duration::ZERO).unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed_stale, 1);
        assert_eq!(report.removed_corrupt, 2, "corrupt entry + stray temp");
        assert_eq!(report.kept_temps, 0);
        assert!(report.bytes_freed > 0);
        assert_eq!(store.len().unwrap(), 1);
        // Index was rebuilt from the survivors.
        let idx = store.index().unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx[0].seed, 1);
        assert_eq!(idx[0].sim_version, "v1");
    }

    #[test]
    fn gc_spares_temp_files_within_the_grace_age() {
        let store = tmp_store("gc-grace");
        store.put(&key("conv:128", 1, "v1"), &point(1)).unwrap();
        let temp = store.entries_dir().join(".tmp-inflight-999-0");
        fs::write(&temp, "another process is still writing this").unwrap();

        // The default grace protects a just-written temp...
        let report = store.gc("v1").unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.kept_temps, 1, "in-flight temp must survive gc");
        assert!(temp.exists());
        // ...while a zero grace treats it as an orphan.
        let report = store.gc_with_temp_grace("v1", Duration::ZERO).unwrap();
        assert_eq!(report.kept_temps, 0);
        assert!(!temp.exists());
    }

    #[test]
    fn rebuild_index_recovers_from_a_lost_or_duplicated_index() {
        let store = tmp_store("rebuild");
        for s in 0..4 {
            store.put(&key("conv:128", s, "v1"), &point(s)).unwrap();
        }
        // Simulate concurrent-appender residue plus a torn final line.
        let existing = fs::read_to_string(store.index_path()).unwrap();
        let first = existing.lines().next().unwrap();
        fs::write(
            store.index_path(),
            format!("{existing}{first}\n{}", &first[..10]),
        )
        .unwrap();
        assert_eq!(store.index().unwrap().len(), 4, "readers dedup");
        assert_eq!(store.rebuild_index().unwrap(), 4);
        assert_eq!(store.index().unwrap().len(), 4);
        // A deleted index is rebuilt wholesale from the entries.
        fs::remove_file(store.index_path()).unwrap();
        assert_eq!(store.rebuild_index().unwrap(), 4);
        let idx = store.index().unwrap();
        assert_eq!(idx.len(), 4);
        let mut seeds: Vec<u64> = idx.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![0, 1, 2, 3]);
    }

    #[test]
    fn read_only_handle_reads_but_never_writes_or_creates() {
        let store = tmp_store("read-only");
        let k = key("conv:128", 5, "v1");
        store.put(&k, &point(9)).unwrap();

        let ro = ExperimentStore::open_read_only(store.root()).unwrap();
        assert!(ro.is_read_only());
        assert_eq!(ro.get(&k).unwrap().unwrap(), point(9));
        for err in [
            ro.put(&key("conv:128", 6, "v1"), &point(1)).unwrap_err(),
            ro.put_replace(&k, &point(1)).unwrap_err(),
        ] {
            assert_eq!(err.kind(), io::ErrorKind::PermissionDenied, "{err}");
        }
        assert_eq!(ro.counters(), StoreCounters::default());

        // A missing store is NotFound, never materialised empty.
        let missing = std::env::temp_dir().join("exp-store-test-no-such-store");
        let _ = fs::remove_dir_all(&missing);
        let err = ExperimentStore::open_read_only(&missing).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert!(!missing.exists(), "read-only open must not create");
    }

    #[test]
    fn counters_track_publish_dedup_heal_replace() {
        let store = tmp_store("counters");
        let k = key("samie", 1, "v1");
        store.put(&k, &point(1)).unwrap();
        store.put(&k, &point(2)).unwrap(); // loses the write-once race
        store.put_replace(&k, &point(3)).unwrap();
        fs::write(store.entry_path(&k), "garbage").unwrap();
        store.put(&k, &point(4)).unwrap(); // heals the corrupt entry
        assert_eq!(
            store.counters(),
            StoreCounters {
                published: 1,
                deduped: 1,
                healed: 1,
                replaced: 1,
            }
        );
    }

    #[test]
    fn deterministic_dump_is_order_independent_and_loud_on_corruption() {
        let a = tmp_store("dump-a");
        let b = tmp_store("dump-b");
        // Same logical contents, inserted in opposite orders with
        // different wall clocks.
        for (store, seeds, wall) in [(&a, [1, 2, 3], 10), (&b, [3, 2, 1], 999_999)] {
            for s in seeds {
                let p = StoredPoint {
                    wall_nanos: wall,
                    ..point(s * 7)
                };
                store.put(&key("conv:64", s, "v1"), &p).unwrap();
            }
        }
        let dump = a.dump_deterministic().unwrap();
        assert_eq!(dump, b.dump_deterministic().unwrap());
        assert_eq!(dump.matches("key design=").count(), 3);
        assert!(!dump.contains("wall"), "wall clock is excluded");

        // A corrupt entry fails the dump instead of vanishing from it.
        fs::write(a.entry_path(&key("conv:64", 1, "v1")), "garbage").unwrap();
        assert!(matches!(
            a.dump_deterministic().unwrap_err(),
            StoreError::Corrupt { .. }
        ));
    }

    #[test]
    fn concurrent_puts_from_many_threads() {
        let store = tmp_store("parallel");
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..16 {
                        let k = key("conv:64", t * 100 + i, "v1");
                        store.put(&k, &point(t * 100 + i)).unwrap();
                        assert!(store.get(&k).unwrap().is_some());
                    }
                });
            }
        });
        assert_eq!(store.len().unwrap(), 128);
        assert_eq!(store.index().unwrap().len(), 128);
    }

    #[test]
    fn concurrent_puts_on_overlapping_keys_never_corrupt() {
        // 8 threads hammer the *same* 16 keys — the write-once race in
        // its purest form. Every entry must decode, hold one of the
        // written values, and index exactly once.
        let store = tmp_store("overlap");
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let store = &store;
                s.spawn(move || {
                    for round in 0..4u64 {
                        for i in 0..16 {
                            let k = key("samie", i, "v1");
                            store.put(&k, &point(1000 + t * 10 + round)).unwrap();
                            let got = store.get(&k).unwrap().expect("entry present");
                            assert!(got.stats.cycles >= 1000, "torn value: {got:?}");
                        }
                    }
                });
            }
        });
        assert_eq!(store.len().unwrap(), 16);
        assert_eq!(store.index().unwrap().len(), 16);
        for i in 0..16 {
            let got = store.get(&key("samie", i, "v1")).unwrap().unwrap();
            assert!(got.stats.cycles >= 1000);
        }
    }
}
