//! Property tests for the `.strc` trace format: arbitrary well-formed
//! micro-op sequences must survive write → read bit-identically, and
//! corrupted streams must fail loudly instead of decoding to garbage.

use proptest::prelude::*;

use trace_isa::strc::{RecordedTrace, StrcError};
use trace_isa::{MicroOp, OpClass, TraceSource, LINE_BYTES};

/// Any well-formed micro-op: every class, adversarial PC/address jumps
/// (including u64 wrap-around territory), all four access sizes.
fn op_strategy() -> impl Strategy<Value = MicroOp> {
    (
        0u8..10,                                  // class selector
        any::<u64>(),                             // raw pc
        any::<u64>(),                             // raw addr / target
        prop::sample::select(vec![1u8, 2, 4, 8]), // access size
        0u32..64,                                 // dep 0
        0u32..64,                                 // dep 1
        any::<bool>(),                            // taken
    )
        .prop_map(|(sel, pc, raw, size, d0, d1, taken)| {
            let deps = [d0, d1];
            match sel {
                0 => MicroOp::alu(pc, deps),
                1 => MicroOp::compute(pc, OpClass::IntMul, deps),
                2 => MicroOp::compute(pc, OpClass::IntDiv, deps),
                3 => MicroOp::compute(pc, OpClass::FpAlu, deps),
                4 => MicroOp::compute(pc, OpClass::FpMul, deps),
                5 => MicroOp::compute(pc, OpClass::FpDiv, deps),
                6 | 7 => {
                    // Align within the line so the access never straddles.
                    let line = raw & !(LINE_BYTES as u64 - 1);
                    let slot = (raw >> 8) % (LINE_BYTES as u64 / size as u64);
                    let addr = line + slot * size as u64;
                    if sel == 6 {
                        MicroOp::load(pc, addr, size, deps)
                    } else {
                        MicroOp::store(pc, addr, size, deps)
                    }
                }
                8 => MicroOp::branch(pc, taken, raw, deps),
                _ => MicroOp::jump(pc, raw),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_is_bit_identical(
        ops in prop::collection::vec(op_strategy(), 1..200),
        name in prop::sample::select(vec!["t", "gzip", "fuzz-repro", "ümläut"]),
    ) {
        let rec = RecordedTrace::from_ops(name, ops.clone());
        let bytes = rec.encode();
        let back = RecordedTrace::decode(&bytes).unwrap();
        prop_assert_eq!(back.name(), name);
        prop_assert_eq!(back.ops(), &ops[..]);
        // Re-encoding the decoded trace reproduces the exact byte stream.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn replay_source_matches_recorded_ops(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let n = ops.len();
        let mut src = RecordedTrace::from_ops("replay", ops.clone()).into_source();
        for i in 0..2 * n + 3 {
            prop_assert_eq!(src.next_op(), ops[i % n], "op {}", i);
        }
    }

    #[test]
    fn corrupting_one_byte_never_decodes_to_the_same_ops(
        ops in prop::collection::vec(op_strategy(), 1..40),
        victim in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let rec = RecordedTrace::from_ops("x", ops);
        let mut bytes = rec.encode();
        let at = victim as usize % bytes.len();
        bytes[at] ^= flip;
        // Either the decoder rejects the stream, or it decodes to a
        // *different* trace — silently returning the original would mean
        // the byte was not actually covered by the format.
        match RecordedTrace::decode(&bytes) {
            Ok(back) => prop_assert_ne!(back, rec),
            Err(StrcError::Format { .. }) => {}
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
}
