//! Address geometry helpers.
//!
//! The paper's configuration (Table 2) uses 32-byte L1 lines throughout and
//! an Alpha-like machine; Alpha uses 8 KB pages. Both constants are fixed
//! here — the whole reproduction (LSQ banking, presentBit bookkeeping,
//! energy constants) is calibrated to them, exactly as the paper fixes them
//! for CACTI.

/// L1 cache line size in bytes (Table 2: 32-byte lines for L1 I/D).
pub const LINE_BYTES: u32 = 32;

/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = LINE_BYTES.trailing_zeros();

/// Virtual-memory page size in bytes (Alpha: 8 KB).
pub const PAGE_BYTES: u64 = 8192;

/// log2 of [`PAGE_BYTES`].
pub const PAGE_SHIFT: u32 = PAGE_BYTES.trailing_zeros();

/// Byte address of the cache line containing `addr`.
#[inline]
pub fn line_addr(addr: u64) -> u64 {
    addr & !(LINE_BYTES as u64 - 1)
}

/// Cache-line index (line address >> line shift) — what SAMIE-LSQ entries
/// are keyed by and what selects a DistribLSQ bank.
#[inline]
pub fn line_index(addr: u64) -> u64 {
    addr >> LINE_SHIFT
}

/// Offset of `addr` within its cache line.
#[inline]
pub fn line_offset(addr: u64) -> u32 {
    (addr as u32) & (LINE_BYTES - 1)
}

/// Virtual page number of `addr`.
#[inline]
pub fn page_number(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// Offset of `addr` within its page.
#[inline]
pub fn page_offset(addr: u64) -> u64 {
    addr & (PAGE_BYTES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_powers_of_two() {
        assert!(LINE_BYTES.is_power_of_two());
        assert!(PAGE_BYTES.is_power_of_two());
        assert_eq!(1u32 << LINE_SHIFT, LINE_BYTES);
        assert_eq!(1u64 << PAGE_SHIFT, PAGE_BYTES);
    }

    #[test]
    fn line_decomposition_roundtrips() {
        for addr in [0u64, 1, 31, 32, 33, 0xdead_beef, u64::MAX - 31] {
            assert_eq!(line_addr(addr) + line_offset(addr) as u64, addr);
            assert_eq!(line_addr(addr) % LINE_BYTES as u64, 0);
            assert_eq!(line_index(addr), line_addr(addr) >> LINE_SHIFT);
        }
    }

    #[test]
    fn page_decomposition_roundtrips() {
        for addr in [0u64, 8191, 8192, 0x12345678] {
            assert_eq!(page_number(addr) * PAGE_BYTES + page_offset(addr), addr);
        }
    }

    #[test]
    fn same_line_iff_same_index() {
        assert_eq!(line_index(64), line_index(95));
        assert_ne!(line_index(64), line_index(96));
    }
}
