//! `.strc` — the versioned compact binary trace format.
//!
//! A `.strc` file captures a finite prefix of a [`TraceSource`] stream so
//! it can be replayed bit-identically later (differential fuzzing repros,
//! cross-machine regression traces, captured workloads). The format is
//! deliberately tiny and self-contained:
//!
//! | field | size | contents |
//! |---|---|---|
//! | magic | 4 bytes | `"STRC"` ([`STRC_MAGIC`]) |
//! | version | 1 byte | currently 1 ([`STRC_VERSION`]) |
//! | name | varint length + UTF-8 bytes | display name of the workload |
//! | ops | one record per micro-op | delta-encoded, see below |
//!
//! Each op record starts with a tag byte, followed by LEB128 varints:
//!
//! | record field | encoding | notes |
//! |---|---|---|
//! | tag | 1 byte | [`OpClass`] discriminant in bits 0–3; class flags in bits 4–7 (access-size code for memory ops, taken bit for branches) |
//! | pc | zigzag varint | delta from the previous op's PC |
//! | deps\[0\], deps\[1\] | varint ×2 | producer distances (must fit `u32`) |
//! | payload | zigzag varint | loads/stores: address delta from the previous *memory* op; branches: target delta from the own PC; compute ops: absent |
//!
//! Typical traces encode in 4–7 bytes per dynamic op.
//!
//! Round-tripping is bit-identical: for any op sequence,
//! `decode(encode(ops)) == ops` (the property suite in
//! `crates/isa/tests/strc_props.rs` enforces this for arbitrary
//! sequences), and decoding validates every op with
//! [`MicroOp::is_well_formed`] so a corrupt or truncated file fails with a
//! [`StrcError`] instead of poisoning a simulation.
//!
//! ## Example
//!
//! ```
//! use trace_isa::strc::{RecordedTrace, TraceWriter};
//! use trace_isa::{MicroOp, TraceSource};
//!
//! // Capture a few ops with TraceWriter (any io::Write sink works)...
//! let ops = vec![
//!     MicroOp::alu(0x400000, [0, 0]),
//!     MicroOp::load(0x400004, 0x1000_0040, 8, [1, 0]),
//!     MicroOp::branch(0x400008, true, 0x400000, [1, 0]),
//! ];
//! let mut w = TraceWriter::new(Vec::new(), "demo").unwrap();
//! for op in &ops {
//!     w.write_op(op).unwrap();
//! }
//! assert_eq!(w.ops_written(), 3);
//! let bytes = w.finish().unwrap();
//!
//! // ...and replay them bit-identically with FileTrace.
//! let rec = RecordedTrace::decode(&bytes).unwrap();
//! assert_eq!(rec.name(), "demo");
//! assert_eq!(rec.ops(), &ops[..]);
//! let mut replay = rec.into_source();
//! assert_eq!(replay.next_op(), ops[0]);
//! assert_eq!(replay.name(), "demo");
//! ```

use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

use crate::op::{MicroOp, OpClass, Payload};
use crate::source::TraceSource;

/// File magic — the first four bytes of every `.strc` file.
pub const STRC_MAGIC: [u8; 4] = *b"STRC";

/// Current format version written by [`TraceWriter`].
pub const STRC_VERSION: u8 = 1;

/// Error raised by `.strc` decoding or I/O.
#[derive(Debug)]
pub enum StrcError {
    /// Underlying file/stream I/O failed.
    Io(io::Error),
    /// The byte stream is not a valid `.strc` payload.
    Format {
        /// Byte offset at which decoding failed.
        offset: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for StrcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrcError::Io(e) => write!(f, "strc i/o error: {e}"),
            StrcError::Format { offset, reason } => {
                write!(f, "bad .strc data at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StrcError {}

impl From<io::Error> for StrcError {
    fn from(e: io::Error) -> Self {
        StrcError::Io(e)
    }
}

// ---- varint / zigzag primitives -----------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, reason: impl Into<String>) -> StrcError {
        StrcError::Format {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn u8(&mut self) -> Result<u8, StrcError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of data"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, StrcError> {
        let mut v = 0u64;
        let mut nbytes = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            nbytes += 1;
            // The 10th byte holds only the top bit of a u64; anything more
            // would be silently dropped, so reject it outright.
            if shift == 63 && b & 0x7e != 0 {
                return Err(self.err("varint overflows 64 bits"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                // Canonical encoding only (the writer never emits a
                // trailing zero group): every value has exactly one
                // accepted byte sequence, so corruption cannot alias.
                if nbytes > 1 && b == 0 {
                    return Err(self.err("non-canonical varint"));
                }
                return Ok(v);
            }
        }
        Err(self.err("varint longer than 64 bits"))
    }

    /// A varint that must fit a u32 (producer distances); larger values
    /// are corruption, not silently-truncatable data.
    fn varint_u32(&mut self) -> Result<u32, StrcError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| self.err(format!("value {v} overflows u32")))
    }

    fn zigzag(&mut self) -> Result<i64, StrcError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

// ---- op record encoding --------------------------------------------------

/// Stable on-disk discriminants (do not reorder — the format depends on
/// them, not on `OpClass`'s in-memory layout).
const CLASS_TAGS: [OpClass; 10] = OpClass::ALL;

fn class_tag(class: OpClass) -> u8 {
    CLASS_TAGS
        .iter()
        .position(|&c| c == class)
        .expect("every class is in ALL") as u8
}

fn encode_op(out: &mut Vec<u8>, op: &MicroOp, prev_pc: &mut u64, prev_addr: &mut u64) {
    let mut tag = class_tag(op.class);
    match op.payload {
        Payload::Mem(m) => tag |= (m.size.trailing_zeros() as u8) << 4,
        Payload::Branch(b) => tag |= (b.taken as u8) << 4,
        Payload::None => {}
    }
    out.push(tag);
    put_zigzag(out, op.pc.wrapping_sub(*prev_pc) as i64);
    *prev_pc = op.pc;
    put_varint(out, op.deps[0] as u64);
    put_varint(out, op.deps[1] as u64);
    match op.payload {
        Payload::Mem(m) => {
            put_zigzag(out, m.addr.wrapping_sub(*prev_addr) as i64);
            *prev_addr = m.addr;
        }
        Payload::Branch(b) => put_zigzag(out, b.target.wrapping_sub(op.pc) as i64),
        Payload::None => {}
    }
}

fn decode_op(
    cur: &mut Cursor<'_>,
    prev_pc: &mut u64,
    prev_addr: &mut u64,
) -> Result<MicroOp, StrcError> {
    let start = cur.pos;
    let tag = cur.u8()?;
    let class = *CLASS_TAGS
        .get((tag & 0x0f) as usize)
        .ok_or_else(|| cur.err(format!("unknown op class tag {}", tag & 0x0f)))?;
    let flags = tag >> 4;
    let pc = prev_pc.wrapping_add(cur.zigzag()? as u64);
    *prev_pc = pc;
    let deps = [cur.varint_u32()?, cur.varint_u32()?];
    let payload = if class.is_mem() {
        let addr = prev_addr.wrapping_add(cur.zigzag()? as u64);
        *prev_addr = addr;
        if flags > 3 {
            return Err(cur.err(format!("bad access-size code {flags}")));
        }
        Payload::Mem(crate::op::MemRef {
            addr,
            size: 1u8 << flags,
        })
    } else if class.is_branch() {
        if flags > 1 {
            return Err(cur.err(format!("bad branch flags {flags}")));
        }
        let target = pc.wrapping_add(cur.zigzag()? as u64);
        Payload::Branch(crate::op::BranchInfo {
            taken: flags == 1,
            target,
        })
    } else {
        if flags != 0 {
            return Err(cur.err(format!("bad compute-op flags {flags}")));
        }
        Payload::None
    };
    let op = MicroOp {
        pc,
        class,
        deps,
        payload,
    };
    if !op.is_well_formed() {
        return Err(StrcError::Format {
            offset: start,
            reason: format!("decoded op is not well-formed: {op:?}"),
        });
    }
    Ok(op)
}

// ---- TraceWriter ---------------------------------------------------------

/// Streaming `.strc` encoder over any [`io::Write`] sink.
///
/// See the [module docs](self) for the format and a round-trip example;
/// [`TraceWriter::create`] opens a buffered file writer directly.
pub struct TraceWriter<W: Write> {
    sink: W,
    buf: Vec<u8>,
    prev_pc: u64,
    prev_addr: u64,
    count: u64,
}

impl TraceWriter<io::BufWriter<std::fs::File>> {
    /// Create `path` (truncating) and write the `.strc` header for a trace
    /// named `name`.
    pub fn create(path: &Path, name: &str) -> io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        TraceWriter::new(io::BufWriter::new(std::fs::File::create(path)?), name)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wrap `sink` and write the `.strc` header for a trace named `name`.
    pub fn new(mut sink: W, name: &str) -> io::Result<Self> {
        let mut header = Vec::with_capacity(16 + name.len());
        header.extend_from_slice(&STRC_MAGIC);
        header.push(STRC_VERSION);
        put_varint(&mut header, name.len() as u64);
        header.extend_from_slice(name.as_bytes());
        sink.write_all(&header)?;
        Ok(TraceWriter {
            sink,
            buf: Vec::with_capacity(32),
            prev_pc: 0,
            prev_addr: 0,
            count: 0,
        })
    }

    /// Append one op to the trace.
    pub fn write_op(&mut self, op: &MicroOp) -> io::Result<()> {
        debug_assert!(op.is_well_formed(), "refusing to record {op:?}");
        self.buf.clear();
        encode_op(&mut self.buf, op, &mut self.prev_pc, &mut self.prev_addr);
        self.count += 1;
        self.sink.write_all(&self.buf)
    }

    /// Ops written so far.
    pub fn ops_written(&self) -> u64 {
        self.count
    }

    /// Flush and hand back the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

// ---- RecordedTrace / FileTrace -------------------------------------------

/// A fully-decoded `.strc` trace: a display name plus its op sequence.
///
/// Cheap to share (`Arc<RecordedTrace>`) between the sessions that replay
/// it; [`RecordedTrace::into_source`] / [`FileTrace`] provide the cycling
/// [`TraceSource`] view the simulator needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    name: String,
    ops: Vec<MicroOp>,
}

impl RecordedTrace {
    /// Build a trace from ops already in memory. Panics if `ops` is empty
    /// or contains an ill-formed op (replay sources must be infinite and
    /// well-formed).
    pub fn from_ops(name: impl Into<String>, ops: Vec<MicroOp>) -> Self {
        assert!(!ops.is_empty(), "a recorded trace needs at least one op");
        assert!(
            ops.iter().all(MicroOp::is_well_formed),
            "recorded traces must contain only well-formed ops"
        );
        RecordedTrace {
            name: name.into(),
            ops,
        }
    }

    /// Decode a `.strc` byte stream.
    pub fn decode(bytes: &[u8]) -> Result<Self, StrcError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = cur.u8()?;
        }
        if magic != STRC_MAGIC {
            return Err(StrcError::Format {
                offset: 0,
                reason: format!("bad magic {magic:02x?} (expected \"STRC\")"),
            });
        }
        let version = cur.u8()?;
        if version != STRC_VERSION {
            return Err(cur.err(format!(
                "unsupported version {version} (this build reads {STRC_VERSION})"
            )));
        }
        let name_len = usize::try_from(cur.varint()?)
            .ok()
            // Compare against the remaining bytes without `pos + len`
            // arithmetic: a crafted huge length must error, not overflow.
            .filter(|&n| n <= bytes.len() - cur.pos)
            .ok_or_else(|| cur.err("name extends past end of data"))?;
        let name = std::str::from_utf8(&bytes[cur.pos..cur.pos + name_len])
            .map_err(|_| cur.err("trace name is not UTF-8"))?
            .to_string();
        cur.pos += name_len;
        let (mut prev_pc, mut prev_addr) = (0u64, 0u64);
        let mut ops = Vec::new();
        while cur.pos < bytes.len() {
            ops.push(decode_op(&mut cur, &mut prev_pc, &mut prev_addr)?);
        }
        if ops.is_empty() {
            return Err(cur.err("trace contains no ops"));
        }
        Ok(RecordedTrace { name, ops })
    }

    /// Encode to `.strc` bytes (the exact stream [`TraceWriter`] emits).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), &self.name).expect("Vec sinks cannot fail");
        for op in &self.ops {
            w.write_op(op).expect("Vec sinks cannot fail");
        }
        w.finish().expect("Vec sinks cannot fail")
    }

    /// Load a `.strc` file from disk.
    pub fn load(path: &Path) -> Result<Self, StrcError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }

    /// Write the trace to `path` as `.strc` (creating parent directories).
    pub fn save(&self, path: &Path) -> Result<(), StrcError> {
        let mut w = TraceWriter::create(path, &self.name)?;
        for op in &self.ops {
            w.write_op(op)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Display name recorded in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The decoded op sequence.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// A cycling [`TraceSource`] over this trace.
    pub fn into_source(self) -> FileTrace {
        FileTrace::from_recorded(Arc::new(self))
    }

    /// Stable content digest of the op sequence
    /// ([`fingerprint128`](crate::fingerprint128) over the encoded op
    /// records, *excluding* the header) — the identity the experiment
    /// store keys replay workloads by. Renaming a trace does not change
    /// its digest; changing any op does.
    ///
    /// ```
    /// use trace_isa::strc::RecordedTrace;
    /// use trace_isa::MicroOp;
    ///
    /// let ops = vec![MicroOp::alu(0x400000, [0, 0])];
    /// let a = RecordedTrace::from_ops("a", ops.clone());
    /// let b = RecordedTrace::from_ops("b", ops);
    /// assert_eq!(a.content_digest(), b.content_digest());
    /// ```
    pub fn content_digest(&self) -> u128 {
        let mut bytes = Vec::with_capacity(self.ops.len() * 8);
        let (mut prev_pc, mut prev_addr) = (0u64, 0u64);
        for op in &self.ops {
            encode_op(&mut bytes, op, &mut prev_pc, &mut prev_addr);
        }
        crate::hash::fingerprint128(&bytes)
    }
}

/// A recorded trace replayed as a [`TraceSource`].
///
/// Replays the recorded op sequence in order and cycles when exhausted
/// (trace sources must be infinite); within the first
/// [`period`](FileTrace::period) ops the stream is bit-identical to
/// whatever source was recorded.
///
/// ```no_run
/// use std::path::Path;
/// use trace_isa::strc::FileTrace;
/// use trace_isa::TraceSource;
///
/// let mut trace = FileTrace::open(Path::new("results/gzip-s42.strc")).unwrap();
/// let first = trace.next_op();
/// assert!(first.is_well_formed());
/// ```
#[derive(Debug, Clone)]
pub struct FileTrace {
    data: Arc<RecordedTrace>,
    pos: usize,
}

impl FileTrace {
    /// Open and decode a `.strc` file.
    pub fn open(path: &Path) -> Result<Self, StrcError> {
        Ok(FileTrace::from_recorded(Arc::new(RecordedTrace::load(
            path,
        )?)))
    }

    /// Replay an already-decoded trace (shared, so N sessions can replay
    /// one decode).
    pub fn from_recorded(data: Arc<RecordedTrace>) -> Self {
        FileTrace { data, pos: 0 }
    }

    /// Ops before the replay wraps around.
    pub fn period(&self) -> usize {
        self.data.ops.len()
    }

    /// The underlying recorded trace.
    pub fn recorded(&self) -> &Arc<RecordedTrace> {
        &self.data
    }
}

impl TraceSource for FileTrace {
    fn next_op(&mut self) -> MicroOp {
        let op = self.data.ops[self.pos];
        self.pos += 1;
        if self.pos == self.data.ops.len() {
            self.pos = 0;
        }
        op
    }

    fn name(&self) -> &str {
        &self.data.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_digest_ignores_name_and_tracks_ops() {
        let ops = sample_ops();
        let a = RecordedTrace::from_ops("one", ops.clone());
        let b = RecordedTrace::from_ops("two", ops.clone());
        assert_eq!(a.content_digest(), b.content_digest());
        let mut shorter = ops.clone();
        shorter.pop();
        let c = RecordedTrace::from_ops("one", shorter);
        assert_ne!(a.content_digest(), c.content_digest());
        // Round-tripping through bytes preserves the digest.
        let d = RecordedTrace::decode(&a.encode()).unwrap();
        assert_eq!(a.content_digest(), d.content_digest());
    }

    fn sample_ops() -> Vec<MicroOp> {
        vec![
            MicroOp::alu(0x40_0000, [0, 0]),
            MicroOp::load(0x40_0004, 0x1000_0040, 8, [1, 0]),
            MicroOp::store(0x40_0008, 0x1000_0040, 4, [2, 1]),
            MicroOp::compute(0x40_000c, OpClass::FpDiv, [3, 0]),
            MicroOp::branch(0x40_0010, false, 0x40_0000, [1, 0]),
            MicroOp::jump(0x40_0014, 0x40_0000),
            MicroOp::load(0x40_0000, 0xffff_ffff_ffff_ffe0, 1, [0, 0]),
        ]
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let rec = RecordedTrace::from_ops("t", sample_ops());
        let back = RecordedTrace::decode(&rec.encode()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn file_trace_cycles_and_names() {
        let ops = sample_ops();
        let mut t = RecordedTrace::from_ops("cyc", ops.clone()).into_source();
        assert_eq!(t.name(), "cyc");
        assert_eq!(t.period(), ops.len());
        for i in 0..3 * ops.len() {
            assert_eq!(t.next_op(), ops[i % ops.len()], "op {i}");
        }
    }

    #[test]
    fn header_errors_are_reported() {
        assert!(matches!(
            RecordedTrace::decode(b"NOPE"),
            Err(StrcError::Format { .. })
        ));
        let mut good = RecordedTrace::from_ops("x", sample_ops()).encode();
        good[4] = 99; // version
        let err = RecordedTrace::decode(&good).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = RecordedTrace::from_ops("x", sample_ops()).encode();
        // Any strict prefix that cuts an op record mid-way must error, not
        // silently yield garbage (prefixes that happen to end exactly on a
        // record boundary decode to fewer ops, which is fine — skip those).
        let full = RecordedTrace::decode(&bytes).unwrap().ops().len();
        for cut in 6..bytes.len() {
            match RecordedTrace::decode(&bytes[..cut]) {
                Ok(rec) => assert!(rec.ops().len() < full),
                Err(StrcError::Format { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn huge_name_length_errors_instead_of_overflowing() {
        // Header whose name-length varint is canonical u64::MAX: the
        // length check must reject it without `pos + len` wrap-around.
        let mut bytes = vec![b'S', b'T', b'R', b'C', STRC_VERSION];
        bytes.extend_from_slice(&[0xff; 9]);
        bytes.push(0x01); // 10-byte canonical varint for u64::MAX
        let err = RecordedTrace::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("name extends"), "{err}");
    }

    #[test]
    fn oversized_dep_varint_is_rejected_not_truncated() {
        // Encode one ALU op, then patch its first dep (a single 0x00
        // byte) into a canonical 5-byte varint for 2^32 — which would
        // silently alias to dep 0 if the decoder truncated to u32.
        let rec = RecordedTrace::from_ops("x", vec![MicroOp::alu(0, [0, 0])]);
        let bytes = rec.encode();
        // Header: "STRC" + version + len(1) + "x"; op: tag, pc-delta, d0...
        let d0_at = 4 + 1 + 1 + 1 + 2;
        assert_eq!(bytes[d0_at], 0x00, "layout changed; update the test");
        let mut bad = bytes[..d0_at].to_vec();
        bad.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x10]); // 2^32
        bad.extend_from_slice(&bytes[d0_at + 1..]);
        let err = RecordedTrace::decode(&bad).unwrap_err();
        assert!(err.to_string().contains("overflows u32"), "{err}");
    }

    #[test]
    fn corrupt_mem_op_fails_well_formed_check() {
        // A load whose offset+size straddles a line is rejected at decode.
        let mut bad = RecordedTrace::from_ops(
            "ok",
            vec![MicroOp::load(0, 30, 2, [0, 0])], // offset 30 + 2 = 32, legal
        )
        .encode();
        // Patch the size code from 2 bytes (code 1) to 8 bytes (code 3):
        // the tag byte of the first op follows the 8-byte header ("STRC",
        // version, len=2, "ok").
        let tag_at = 4 + 1 + 1 + 2;
        assert_eq!(bad[tag_at] & 0x0f, class_tag(OpClass::Load));
        bad[tag_at] = (bad[tag_at] & 0x0f) | (3 << 4);
        let err = RecordedTrace::decode(&bad).unwrap_err();
        assert!(err.to_string().contains("well-formed"), "{err}");
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("strc-test-{}", std::process::id()));
        let path = dir.join("sample.strc");
        let rec = RecordedTrace::from_ops("disk", sample_ops());
        rec.save(&path).unwrap();
        let back = FileTrace::open(&path).unwrap();
        assert_eq!(back.recorded().as_ref(), &rec);
        std::fs::remove_dir_all(&dir).ok();
    }
}
