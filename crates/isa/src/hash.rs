//! A fast hasher for simulator-internal `u64` keys, and the stable
//! 128-bit fingerprint used for content addressing.
//!
//! Instruction ages, virtual page numbers and line addresses are benign
//! sequential-ish integers; SipHash's adversarial collision resistance
//! buys nothing on the simulator's innermost loops. [`FastU64Hasher`]
//! replaces it with one Fibonacci multiply plus a xor-shift, and — being
//! seed-free — makes hash-map iteration order identical across
//! processes, removing a source of run-to-run variation.
//!
//! [`fingerprint128`] serves the opposite niche: a *stable, versioned*
//! content digest (FNV-1a over 128 bits) whose value for a given byte
//! string never changes across processes, platforms or releases. The
//! experiment store keys cached simulation points by it and `.strc`
//! traces identify their content through it, so its definition is frozen:
//! changing it invalidates every on-disk store.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a offset basis, 128-bit parameterisation.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a prime, 128-bit parameterisation (2^88 + 2^8 + 0x3b).
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Stable 128-bit FNV-1a fingerprint of a byte string.
///
/// Deterministic across processes, platforms and crate versions — the
/// content-addressing primitive behind the experiment store and `.strc`
/// trace digests. Not a cryptographic hash: it resists accidental
/// collisions (2⁻⁶⁴ birthday bound at billions of entries), not
/// adversarial ones.
///
/// ```
/// use trace_isa::fingerprint128;
///
/// // Pinned forever: store keys on disk depend on these exact values.
/// assert_eq!(fingerprint128(b""), 0x6c62272e07bb014262b821756295c58d);
/// assert_ne!(fingerprint128(b"conv:128"), fingerprint128(b"conv:64"));
/// ```
pub fn fingerprint128(bytes: &[u8]) -> u128 {
    let mut h = FNV128_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// Hash map keyed by `u64` using [`FastU64Hasher`].
// samie-allow(default-hasher): this alias is the sanctioned deterministic map — the hasher parameter below is FastU64Hasher, not RandomState
pub type U64Map<V> = std::collections::HashMap<u64, V, BuildHasherDefault<FastU64Hasher>>;

/// Fibonacci multiply, then fold the high bits (which carry the entropy
/// after the multiply) into the low bits the hash-map bucket index is
/// taken from.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastU64Hasher(u64);

impl Hasher for FastU64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-style); u64 keys hash through `write_u64`.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let x = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = x ^ (x >> 32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn sequential_keys_hash_distinctly() {
        let hashes: std::collections::BTreeSet<u64> = (0..4096u64)
            .map(|k| {
                let mut h = FastU64Hasher::default();
                k.hash(&mut h);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 4096);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        // Known FNV-1a/128 vector: the empty string hashes to the offset
        // basis. Single-byte changes and extensions both move the value.
        assert_eq!(fingerprint128(b""), FNV128_OFFSET);
        let base = fingerprint128(b"design=samie;seed=42");
        assert_ne!(base, fingerprint128(b"design=samie;seed=43"));
        assert_ne!(base, fingerprint128(b"design=samie;seed=42 "));
        // Deterministic: two computations agree.
        assert_eq!(base, fingerprint128(b"design=samie;seed=42"));
    }

    #[test]
    fn u64_map_round_trips() {
        let mut m: U64Map<u32> = U64Map::default();
        for k in 0..512u64 {
            m.insert(k << 13, k as u32);
        }
        assert_eq!(m.len(), 512);
        assert_eq!(m.get(&(511 << 13)), Some(&511));
        assert_eq!(m.remove(&0), Some(0));
    }
}
