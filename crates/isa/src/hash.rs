//! A fast hasher for simulator-internal `u64` keys.
//!
//! Instruction ages, virtual page numbers and line addresses are benign
//! sequential-ish integers; SipHash's adversarial collision resistance
//! buys nothing on the simulator's innermost loops. [`FastU64Hasher`]
//! replaces it with one Fibonacci multiply plus a xor-shift, and — being
//! seed-free — makes hash-map iteration order identical across
//! processes, removing a source of run-to-run variation.

use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed by `u64` using [`FastU64Hasher`].
pub type U64Map<V> = std::collections::HashMap<u64, V, BuildHasherDefault<FastU64Hasher>>;

/// Fibonacci multiply, then fold the high bits (which carry the entropy
/// after the multiply) into the low bits the hash-map bucket index is
/// taken from.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastU64Hasher(u64);

impl Hasher for FastU64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-style); u64 keys hash through `write_u64`.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let x = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = x ^ (x >> 32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn sequential_keys_hash_distinctly() {
        let hashes: std::collections::HashSet<u64> = (0..4096u64)
            .map(|k| {
                let mut h = FastU64Hasher::default();
                k.hash(&mut h);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 4096);
    }

    #[test]
    fn u64_map_round_trips() {
        let mut m: U64Map<u32> = U64Map::default();
        for k in 0..512u64 {
            m.insert(k << 13, k as u32);
        }
        assert_eq!(m.len(), 512);
        assert_eq!(m.get(&(511 << 13)), Some(&511));
        assert_eq!(m.remove(&0), Some(0));
    }
}
