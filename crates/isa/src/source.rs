//! Trace sources: infinite deterministic micro-op streams.

use std::collections::VecDeque;

use crate::op::MicroOp;

/// An infinite, deterministic stream of micro-ops.
///
/// The timing simulator pulls ops in batches; a source must keep
/// producing forever (generators wrap around their synthetic program).
/// Determinism — the same source constructed the same way yields the same
/// stream — is what makes every experiment in the harness reproducible.
pub trait TraceSource {
    /// Produce the next dynamic micro-op.
    fn next_op(&mut self) -> MicroOp;

    /// Append the next `n` ops of the stream to `out`. Semantically
    /// identical to `n` calls of [`TraceSource::next_op`]; generators
    /// override it to amortise per-call work across the batch.
    fn next_batch(&mut self, out: &mut VecDeque<MicroOp>, n: usize) {
        for _ in 0..n {
            out.push_back(self.next_op());
        }
    }

    /// Human-readable name for reports ("gcc", "swim", ...).
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// A trace that replays a vector of ops, cycling when exhausted.
///
/// Used throughout the test suites to drive the simulator with hand-built
/// instruction sequences.
#[derive(Debug, Clone)]
pub struct VecTrace {
    ops: Vec<MicroOp>,
    pos: usize,
    name: String,
}

impl VecTrace {
    /// Build a cycling trace from `ops`. Panics if `ops` is empty.
    pub fn new(ops: Vec<MicroOp>) -> Self {
        assert!(!ops.is_empty(), "VecTrace requires at least one op");
        VecTrace {
            ops,
            pos: 0,
            name: "vec".to_string(),
        }
    }

    /// Same, with a display name.
    pub fn named(ops: Vec<MicroOp>, name: impl Into<String>) -> Self {
        let mut t = VecTrace::new(ops);
        t.name = name.into();
        t
    }

    /// Number of ops before the trace wraps around.
    pub fn period(&self) -> usize {
        self.ops.len()
    }
}

impl TraceSource for VecTrace {
    fn next_op(&mut self) -> MicroOp {
        let op = self.ops[self.pos];
        self.pos += 1;
        if self.pos == self.ops.len() {
            self.pos = 0;
        }
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A trace produced by a closure, indexed by dynamic instruction number.
pub struct FnTrace<F: FnMut(u64) -> MicroOp> {
    f: F,
    n: u64,
    name: String,
}

impl<F: FnMut(u64) -> MicroOp> FnTrace<F> {
    /// Build a closure-backed trace.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnTrace {
            f,
            n: 0,
            name: name.into(),
        }
    }
}

impl<F: FnMut(u64) -> MicroOp> TraceSource for FnTrace<F> {
    fn next_op(&mut self) -> MicroOp {
        let op = (self.f)(self.n);
        self.n += 1;
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_op(&mut self) -> MicroOp {
        (**self).next_op()
    }

    fn next_batch(&mut self, out: &mut VecDeque<MicroOp>, n: usize) {
        (**self).next_batch(out, n)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpClass;

    #[test]
    fn vec_trace_cycles() {
        let ops = vec![MicroOp::alu(0, [0, 0]), MicroOp::load(4, 64, 4, [1, 0])];
        let mut t = VecTrace::named(ops.clone(), "t");
        assert_eq!(t.name(), "t");
        assert_eq!(t.period(), 2);
        for i in 0..10 {
            assert_eq!(t.next_op(), ops[i % 2]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_vec_trace_panics() {
        let _ = VecTrace::new(vec![]);
    }

    #[test]
    fn fn_trace_counts() {
        let mut t = FnTrace::new("f", |n| {
            if n % 2 == 0 {
                MicroOp::alu(n * 4, [0, 0])
            } else {
                MicroOp::load(n * 4, n * 8, 8, [1, 0])
            }
        });
        assert_eq!(t.next_op().class, OpClass::IntAlu);
        let op = t.next_op();
        assert_eq!(op.class, OpClass::Load);
        assert_eq!(op.mem().unwrap().addr, 8);
        assert_eq!(t.next_op().pc, 8);
    }

    #[test]
    fn next_batch_equals_repeated_next_op() {
        let ops = vec![MicroOp::alu(0, [0, 0]), MicroOp::load(4, 64, 4, [1, 0])];
        let mut a = VecTrace::new(ops.clone());
        let mut b = VecTrace::new(ops);
        let mut batch = VecDeque::new();
        a.next_batch(&mut batch, 7);
        assert_eq!(batch.len(), 7);
        for got in batch {
            assert_eq!(got, b.next_op());
        }
    }

    #[test]
    fn boxed_trace_delegates() {
        let mut t: Box<VecTrace> = Box::new(VecTrace::named(vec![MicroOp::alu(0, [0, 0])], "b"));
        assert_eq!(t.name(), "b");
        assert_eq!(t.next_op().class, OpClass::IntAlu);
    }
}
