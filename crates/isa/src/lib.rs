//! # trace-isa — micro-op and trace model
//!
//! This crate defines the instruction representation shared by every other
//! crate in the SAMIE-LSQ reproduction: a compact, architecture-neutral
//! *micro-op* ([`MicroOp`]) carrying exactly the information a trace-driven
//! timing simulator needs:
//!
//! * an operation class ([`OpClass`]) selecting functional unit and latency
//!   (latencies follow Table 2 of the paper),
//! * register dependencies expressed as *producer distances* (how many
//!   dynamic instructions earlier the producing op appeared),
//! * a memory reference ([`MemRef`]) for loads and stores, and
//! * a resolved branch outcome ([`BranchInfo`]) for control-flow ops.
//!
//! Traces are infinite deterministic streams implementing [`TraceSource`];
//! the synthetic SPEC CPU2000 workload generators in `spec-traces` and the
//! ad-hoc vectors used by unit tests both implement it.
//!
//! The original paper drives an enhanced SimpleScalar `sim-outorder` with
//! Alpha binaries; this trace model is the substitution layer that lets the
//! same microarchitectural mechanisms be exercised without an ISA frontend.

pub mod addr;
pub mod hash;
pub mod latency;
pub mod op;
pub mod source;
pub mod strc;

pub use addr::{line_addr, line_offset, page_number, LINE_BYTES, PAGE_BYTES};
pub use hash::{fingerprint128, FastU64Hasher, U64Map};
pub use latency::{ExecLatency, FuKind};
pub use op::{BranchInfo, MemRef, MicroOp, OpClass, Payload};
pub use source::{FnTrace, TraceSource, VecTrace};
pub use strc::{FileTrace, RecordedTrace, StrcError, TraceWriter};
