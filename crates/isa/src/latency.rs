//! Functional-unit kinds and execution latencies (Table 2 of the paper).

use crate::op::OpClass;

/// Functional-unit pools of the simulated core.
///
/// Pool sizes (Table 2): 6 integer ALUs, 3 integer mult/div, 4 FP ALUs,
/// 2 FP mult/div, and 4 D-cache read/write ports shared by loads and
/// stores. Branches resolve on integer ALUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FuKind {
    /// Integer ALU (also executes branches).
    IntAlu,
    /// Integer multiplier/divider.
    IntMulDiv,
    /// Floating-point ALU.
    FpAlu,
    /// Floating-point multiplier/divider.
    FpMulDiv,
    /// D-cache read/write port.
    MemPort,
}

impl FuKind {
    /// All kinds, in the order used by the simulator's FU scoreboard.
    pub const ALL: [FuKind; 5] = [
        FuKind::IntAlu,
        FuKind::IntMulDiv,
        FuKind::FpAlu,
        FuKind::FpMulDiv,
        FuKind::MemPort,
    ];

    /// Default pool size for this kind (Table 2).
    pub fn default_count(self) -> usize {
        match self {
            FuKind::IntAlu => 6,
            FuKind::IntMulDiv => 3,
            FuKind::FpAlu => 4,
            FuKind::FpMulDiv => 2,
            FuKind::MemPort => 4,
        }
    }
}

/// Execution latency and pipelining of an op on its functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLatency {
    /// Cycles from issue to result.
    pub cycles: u32,
    /// If false, the FU is busy for the whole `cycles` (divides).
    pub pipelined: bool,
}

/// Functional unit used by an op class.
///
/// Loads and stores occupy a [`FuKind::MemPort`]; their address generation
/// adds one cycle before the port access, modelled by the simulator.
pub fn fu_kind(class: OpClass) -> FuKind {
    match class {
        OpClass::IntAlu | OpClass::CondBranch | OpClass::UncondBranch => FuKind::IntAlu,
        OpClass::IntMul | OpClass::IntDiv => FuKind::IntMulDiv,
        OpClass::FpAlu => FuKind::FpAlu,
        OpClass::FpMul | OpClass::FpDiv => FuKind::FpMulDiv,
        OpClass::Load | OpClass::Store => FuKind::MemPort,
    }
}

/// Execution latency of an op class (Table 2).
///
/// For loads/stores this is the address-generation latency only; cache
/// access latency is added by the memory hierarchy model.
pub fn exec_latency(class: OpClass) -> ExecLatency {
    let (cycles, pipelined) = match class {
        OpClass::IntAlu | OpClass::CondBranch | OpClass::UncondBranch => (1, true),
        OpClass::IntMul => (3, true),
        OpClass::IntDiv => (20, false),
        OpClass::FpAlu => (2, true),
        OpClass::FpMul => (4, true),
        OpClass::FpDiv => (12, false),
        OpClass::Load | OpClass::Store => (1, true),
    };
    ExecLatency { cycles, pipelined }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table2() {
        assert_eq!(exec_latency(OpClass::IntAlu).cycles, 1);
        assert_eq!(exec_latency(OpClass::IntMul).cycles, 3);
        assert_eq!(exec_latency(OpClass::IntDiv).cycles, 20);
        assert!(!exec_latency(OpClass::IntDiv).pipelined);
        assert_eq!(exec_latency(OpClass::FpAlu).cycles, 2);
        assert_eq!(exec_latency(OpClass::FpMul).cycles, 4);
        assert_eq!(exec_latency(OpClass::FpDiv).cycles, 12);
        assert!(!exec_latency(OpClass::FpDiv).pipelined);
    }

    #[test]
    fn fu_pool_sizes_match_table2() {
        assert_eq!(FuKind::IntAlu.default_count(), 6);
        assert_eq!(FuKind::IntMulDiv.default_count(), 3);
        assert_eq!(FuKind::FpAlu.default_count(), 4);
        assert_eq!(FuKind::FpMulDiv.default_count(), 2);
        assert_eq!(FuKind::MemPort.default_count(), 4);
    }

    #[test]
    fn every_class_has_a_unit() {
        for c in OpClass::ALL {
            let k = fu_kind(c);
            assert!(FuKind::ALL.contains(&k));
            assert!(exec_latency(c).cycles >= 1);
        }
        assert_eq!(fu_kind(OpClass::Load), FuKind::MemPort);
        assert_eq!(fu_kind(OpClass::CondBranch), FuKind::IntAlu);
    }
}
