//! Micro-op definition: operation classes, memory references and branch
//! outcomes.

use crate::addr::{line_addr, line_offset};

/// Operation class of a micro-op.
///
/// The classes mirror the functional-unit mix of the simulated processor
/// (Table 2 of the paper): integer ALUs, integer multiply/divide, FP ALUs,
/// FP multiply/divide, memory ports, and the branch unit (which executes on
/// an integer ALU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (3 cycles, pipelined).
    IntMul,
    /// Integer divide (20 cycles, non-pipelined).
    IntDiv,
    /// Floating-point add/sub/convert (2 cycles, pipelined).
    FpAlu,
    /// Floating-point multiply (4 cycles, pipelined).
    FpMul,
    /// Floating-point divide (12 cycles, non-pipelined).
    FpDiv,
    /// Memory load. Carries a [`MemRef`] payload.
    Load,
    /// Memory store. Carries a [`MemRef`] payload.
    Store,
    /// Conditional branch. Carries a [`BranchInfo`] payload.
    CondBranch,
    /// Unconditional branch / jump / call. Carries a [`BranchInfo`] payload.
    UncondBranch,
}

impl OpClass {
    /// All classes, useful for exhaustive tests.
    pub const ALL: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::CondBranch,
        OpClass::UncondBranch,
    ];

    /// Is this a load or a store?
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Is this a load?
    #[inline]
    pub fn is_load(self) -> bool {
        self == OpClass::Load
    }

    /// Is this a store?
    #[inline]
    pub fn is_store(self) -> bool {
        self == OpClass::Store
    }

    /// Is this a control-flow op?
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::CondBranch | OpClass::UncondBranch)
    }

    /// Does this class dispatch to the floating-point issue queue?
    ///
    /// Memory ops and branches dispatch to the integer queue, as in
    /// SimpleScalar's `sim-outorder`.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }
}

/// A memory reference: virtual byte address plus access size.
///
/// Addresses are virtual; the D-TLB in `mem-hier` performs the translation.
/// `size` is 1, 2, 4 or 8 bytes and never straddles a cache line in traces
/// produced by `spec-traces` (the generators align accesses), matching the
/// paper's implicit assumption that an LSQ slot records a single
/// line-offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Virtual byte address.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: u8,
}

impl MemRef {
    /// Create a reference, asserting the size is sane in debug builds.
    #[inline]
    pub fn new(addr: u64, size: u8) -> Self {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        MemRef { addr, size }
    }

    /// Cache-line address (byte address of the containing line).
    #[inline]
    pub fn line(self) -> u64 {
        line_addr(self.addr)
    }

    /// Offset of the access within its cache line.
    #[inline]
    pub fn offset(self) -> u32 {
        line_offset(self.addr)
    }

    /// Do two references overlap in bytes?
    ///
    /// This is the condition under which a store must forward to (or order
    /// against) a load.
    #[inline]
    pub fn overlaps(self, other: MemRef) -> bool {
        let a0 = self.addr;
        let a1 = self.addr + self.size as u64;
        let b0 = other.addr;
        let b1 = other.addr + other.size as u64;
        a0 < b1 && b0 < a1
    }

    /// Does `self` fully cover `other` (so a store `self` can forward the
    /// whole datum `other` wants)?
    #[inline]
    pub fn covers(self, other: MemRef) -> bool {
        self.addr <= other.addr && self.addr + self.size as u64 >= other.addr + other.size as u64
    }
}

/// Resolved outcome of a branch, known at trace-generation time.
///
/// The timing simulator uses this as the oracle against which its branch
/// predictor is scored; mispredictions cost fetch-redirect bubbles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Was the branch taken?
    pub taken: bool,
    /// Target PC if taken.
    pub target: u64,
}

/// Class-specific payload of a [`MicroOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// Non-memory, non-branch op.
    None,
    /// Load/store memory reference.
    Mem(MemRef),
    /// Branch outcome.
    Branch(BranchInfo),
}

/// A dynamic micro-op in a trace.
///
/// Dependencies are *producer distances*: `deps[k] == d` (with `d > 0`)
/// means the op depends on the value produced by the op `d` positions
/// earlier in the dynamic instruction stream; `0` means "no dependency".
/// This representation needs no register renamer in the simulator — the ROB
/// index arithmetic resolves producers directly — while still exposing
/// realistic ILP structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Program counter (used by the branch predictor and I-fetch model).
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Producer distances for up to two source operands; 0 = no dependency.
    pub deps: [u32; 2],
    /// Class-specific payload.
    pub payload: Payload,
}

impl MicroOp {
    /// A plain integer ALU op with the given dependencies.
    #[inline]
    pub fn alu(pc: u64, deps: [u32; 2]) -> Self {
        MicroOp {
            pc,
            class: OpClass::IntAlu,
            deps,
            payload: Payload::None,
        }
    }

    /// A non-memory op of an arbitrary class.
    #[inline]
    pub fn compute(pc: u64, class: OpClass, deps: [u32; 2]) -> Self {
        debug_assert!(!class.is_mem() && !class.is_branch());
        MicroOp {
            pc,
            class,
            deps,
            payload: Payload::None,
        }
    }

    /// A load of `size` bytes from `addr`.
    #[inline]
    pub fn load(pc: u64, addr: u64, size: u8, deps: [u32; 2]) -> Self {
        MicroOp {
            pc,
            class: OpClass::Load,
            deps,
            payload: Payload::Mem(MemRef::new(addr, size)),
        }
    }

    /// A store of `size` bytes to `addr`.
    #[inline]
    pub fn store(pc: u64, addr: u64, size: u8, deps: [u32; 2]) -> Self {
        MicroOp {
            pc,
            class: OpClass::Store,
            deps,
            payload: Payload::Mem(MemRef::new(addr, size)),
        }
    }

    /// A conditional branch with a resolved outcome.
    #[inline]
    pub fn branch(pc: u64, taken: bool, target: u64, deps: [u32; 2]) -> Self {
        MicroOp {
            pc,
            class: OpClass::CondBranch,
            deps,
            payload: Payload::Branch(BranchInfo { taken, target }),
        }
    }

    /// An unconditional branch to `target`.
    #[inline]
    pub fn jump(pc: u64, target: u64) -> Self {
        MicroOp {
            pc,
            class: OpClass::UncondBranch,
            deps: [0, 0],
            payload: Payload::Branch(BranchInfo {
                taken: true,
                target,
            }),
        }
    }

    /// The memory reference, if this is a load/store.
    #[inline]
    pub fn mem(&self) -> Option<MemRef> {
        match self.payload {
            Payload::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// The branch outcome, if this is a branch.
    #[inline]
    pub fn branch_info(&self) -> Option<BranchInfo> {
        match self.payload {
            Payload::Branch(b) => Some(b),
            _ => None,
        }
    }

    /// Internal consistency: payload matches class.
    pub fn is_well_formed(&self) -> bool {
        match self.payload {
            Payload::None => !self.class.is_mem() && !self.class.is_branch(),
            Payload::Mem(m) => {
                self.class.is_mem()
                    && matches!(m.size, 1 | 2 | 4 | 8)
                    // accesses must not straddle a cache line
                    && m.offset() as u64 + m.size as u64 <= crate::addr::LINE_BYTES as u64
            }
            Payload::Branch(_) => self.class.is_branch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates_are_disjoint_and_complete() {
        for c in OpClass::ALL {
            let kinds = [c.is_mem(), c.is_branch(), !(c.is_mem() || c.is_branch())];
            assert_eq!(kinds.iter().filter(|&&k| k).count(), 1, "{c:?}");
        }
        assert!(OpClass::Load.is_mem() && OpClass::Load.is_load());
        assert!(OpClass::Store.is_mem() && OpClass::Store.is_store());
        assert!(!OpClass::Load.is_fp() && !OpClass::Store.is_fp());
        assert!(OpClass::CondBranch.is_branch() && !OpClass::CondBranch.is_fp());
        assert!(OpClass::FpMul.is_fp());
    }

    #[test]
    fn memref_line_and_offset() {
        let m = MemRef::new(0x1234, 4);
        assert_eq!(m.line(), 0x1220);
        assert_eq!(m.offset(), 0x14);
    }

    #[test]
    fn memref_overlap_cases() {
        let a = MemRef::new(100, 4);
        assert!(a.overlaps(MemRef::new(100, 4)));
        assert!(a.overlaps(MemRef::new(102, 4)));
        assert!(a.overlaps(MemRef::new(96, 8)));
        assert!(!a.overlaps(MemRef::new(104, 4)));
        assert!(!a.overlaps(MemRef::new(96, 4)));
        assert!(a.overlaps(MemRef::new(103, 1)));
        assert!(!a.overlaps(MemRef::new(99, 1)));
    }

    #[test]
    fn memref_covers_cases() {
        let st = MemRef::new(100, 8);
        assert!(st.covers(MemRef::new(100, 8)));
        assert!(st.covers(MemRef::new(104, 4)));
        assert!(st.covers(MemRef::new(100, 1)));
        assert!(!st.covers(MemRef::new(96, 8)));
        assert!(!st.covers(MemRef::new(104, 8)));
        // partial overlap is not coverage
        let st2 = MemRef::new(100, 4);
        assert!(!st2.covers(MemRef::new(102, 4)));
    }

    #[test]
    fn constructors_produce_well_formed_ops() {
        assert!(MicroOp::alu(0, [1, 2]).is_well_formed());
        assert!(MicroOp::load(4, 0x1000, 8, [1, 0]).is_well_formed());
        assert!(MicroOp::store(8, 0x2000, 4, [2, 1]).is_well_formed());
        assert!(MicroOp::branch(12, true, 0x40, [1, 0]).is_well_formed());
        assert!(MicroOp::jump(16, 0x80).is_well_formed());
        assert!(MicroOp::compute(20, OpClass::FpDiv, [3, 4]).is_well_formed());
    }

    #[test]
    fn straddling_access_is_ill_formed() {
        // offset 30 + size 4 crosses a 32-byte line boundary
        let op = MicroOp {
            pc: 0,
            class: OpClass::Load,
            deps: [0, 0],
            payload: Payload::Mem(MemRef { addr: 30, size: 4 }),
        };
        assert!(!op.is_well_formed());
    }

    #[test]
    fn payload_accessors() {
        let ld = MicroOp::load(0, 64, 4, [0, 0]);
        assert_eq!(ld.mem(), Some(MemRef::new(64, 4)));
        assert_eq!(ld.branch_info(), None);
        let br = MicroOp::branch(0, false, 4, [0, 0]);
        assert_eq!(br.mem(), None);
        assert_eq!(
            br.branch_info(),
            Some(BranchInfo {
                taken: false,
                target: 4
            })
        );
    }

    #[test]
    fn microop_is_compact() {
        // The simulator keeps a 256-deep window of these; keep them small.
        assert!(std::mem::size_of::<MicroOp>() <= 48);
    }
}
