//! Simulator configuration (Table 2 of the paper).

use mem_hier::{CacheConfig, DataMemoryConfig};

/// Core + memory configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched (renamed) per cycle.
    pub dispatch_width: u32,
    /// Integer-side issue width.
    pub issue_width_int: u32,
    /// FP-side issue width.
    pub issue_width_fp: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Fetch-queue entries.
    pub fetch_queue: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Integer issue-queue entries.
    pub iq_int: usize,
    /// FP issue-queue entries.
    pub iq_fp: usize,
    /// Cycles between a mispredicted branch resolving and useful fetch
    /// resuming (front-end refill).
    pub mispredict_redirect: u32,
    /// L1 I-cache geometry.
    pub l1i: CacheConfig,
    /// Data-memory hierarchy (L1D + L2 + D-TLB).
    pub mem: DataMemoryConfig,
    /// D-cache read/write ports (Table 2: 4).
    pub mem_ports: u32,
    /// Commit watchdog: a debug panic fires if no instruction commits for
    /// this many cycles (forward-progress property of the design).
    pub watchdog_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 8,
            dispatch_width: 8,
            issue_width_int: 8,
            issue_width_fp: 8,
            commit_width: 8,
            fetch_queue: 64,
            rob_size: 256,
            iq_int: 128,
            iq_fp: 128,
            mispredict_redirect: 6,
            l1i: CacheConfig::l1i(),
            mem: DataMemoryConfig::default(),
            mem_ports: 4,
            watchdog_cycles: 100_000,
        }
    }
}

impl SimConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Canonical string naming every configuration field — the
    /// `sim_config` component of an experiment-store cache key. Two
    /// configs produce the same string iff they simulate identically, so
    /// any field change (including cache geometry) invalidates cached
    /// points.
    ///
    /// ```
    /// use ooo_sim::SimConfig;
    ///
    /// let paper = SimConfig::paper().canonical();
    /// let wide = SimConfig { fetch_width: 16, ..SimConfig::paper() }.canonical();
    /// assert_ne!(paper, wide);
    /// assert_eq!(paper, SimConfig::paper().canonical(), "deterministic");
    /// ```
    pub fn canonical(&self) -> String {
        format!(
            "fw{},dw{},iwi{},iwf{},cw{},fq{},rob{},iqi{},iqf{},mr{},ports{},wd{},l1i={},{}",
            self.fetch_width,
            self.dispatch_width,
            self.issue_width_int,
            self.issue_width_fp,
            self.commit_width,
            self.fetch_queue,
            self.rob_size,
            self.iq_int,
            self.iq_fp,
            self.mispredict_redirect,
            self.mem_ports,
            self.watchdog_cycles,
            self.l1i.canonical(),
            self.mem.canonical()
        )
    }

    /// Sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.rob_size == 0 || self.fetch_queue == 0 {
            return Err("rob/fetch queue must be positive".into());
        }
        if self.fetch_width == 0 || self.dispatch_width == 0 || self.commit_width == 0 {
            return Err("pipeline widths must be positive".into());
        }
        if self.issue_width_int == 0 || self.issue_width_fp == 0 {
            return Err("issue widths must be positive".into());
        }
        if self.iq_int == 0 || self.iq_fp == 0 {
            return Err("issue queues must be positive".into());
        }
        if self.mem_ports == 0 {
            return Err("need at least one memory port".into());
        }
        if self.watchdog_cycles == 0 {
            return Err("watchdog must allow at least one commit-free cycle".into());
        }
        self.l1i.validate()?;
        self.mem.l1d.validate()?;
        self.mem.l2.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let c = SimConfig::paper();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.iq_int, 128);
        assert_eq!(c.iq_fp, 128);
        assert_eq!(c.mem_ports, 4);
        assert_eq!(c.l1i.size_bytes, 64 * 1024);
        assert_eq!(c.mem.l1d.size_bytes, 8 * 1024);
        c.validate().unwrap();
    }

    #[test]
    fn canonical_covers_every_field() {
        let base = SimConfig::paper().canonical();
        // A representative mutation per section of the struct: each must
        // move the canonical string (the store-key sensitivity contract).
        let variants = [
            SimConfig {
                commit_width: 4,
                ..SimConfig::paper()
            },
            SimConfig {
                rob_size: 128,
                ..SimConfig::paper()
            },
            SimConfig {
                watchdog_cycles: 50_000,
                ..SimConfig::paper()
            },
            SimConfig {
                l1i: CacheConfig {
                    assoc: 4,
                    ..CacheConfig::l1i()
                },
                ..SimConfig::paper()
            },
            SimConfig {
                mem: DataMemoryConfig {
                    mem_latency: 200,
                    ..DataMemoryConfig::default()
                },
                ..SimConfig::paper()
            },
        ];
        for v in variants {
            assert_ne!(v.canonical(), base, "{:?}", v.canonical());
        }
    }

    #[test]
    fn validate_rejects_zero_issue_widths() {
        for (int_w, fp_w) in [(0, 8), (8, 0), (0, 0)] {
            let c = SimConfig {
                issue_width_int: int_w,
                issue_width_fp: fp_w,
                ..SimConfig::paper()
            };
            let e = c.validate().unwrap_err();
            assert!(e.contains("issue widths"), "{e}");
        }
    }

    #[test]
    fn validate_rejects_zero_issue_queues() {
        for (iq_int, iq_fp) in [(0, 128), (128, 0)] {
            let c = SimConfig {
                iq_int,
                iq_fp,
                ..SimConfig::paper()
            };
            let e = c.validate().unwrap_err();
            assert!(e.contains("issue queues"), "{e}");
        }
    }

    #[test]
    fn validate_rejects_zero_watchdog() {
        let c = SimConfig {
            watchdog_cycles: 0,
            ..SimConfig::paper()
        };
        let e = c.validate().unwrap_err();
        assert!(e.contains("watchdog"), "{e}");
        // One cycle of patience is degenerate but well-formed.
        SimConfig {
            watchdog_cycles: 1,
            ..SimConfig::paper()
        }
        .validate()
        .unwrap();
    }
}
