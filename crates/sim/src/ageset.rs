//! A sorted-vector set of instruction ages.
//!
//! The pipeline's scheduling sets (ready queues, pending loads, unknown
//! store addresses) hold at most a ROB's worth of monotonically allocated
//! ages and are scanned oldest-first every cycle. A sorted `Vec` beats a
//! `BTreeSet` here on every operation that matters: iteration is a slice
//! walk, min is `first()`, membership updates are a binary search plus a
//! bounded `memmove`, and the common insert (an age younger than
//! everything resident) is a plain `push`.

use samie_lsq::Age;

/// An ordered set of ages backed by a sorted vector.
#[derive(Debug, Clone, Default)]
pub struct AgeSet {
    v: Vec<Age>,
}

impl AgeSet {
    /// An empty set.
    pub fn new() -> Self {
        AgeSet { v: Vec::new() }
    }

    /// Number of resident ages.
    #[inline]
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Oldest resident age.
    #[inline]
    pub fn first(&self) -> Option<Age> {
        self.v.first().copied()
    }

    /// Is any resident age strictly older than `age`?
    #[inline]
    pub fn any_below(&self, age: Age) -> bool {
        self.v.first().is_some_and(|&f| f < age)
    }

    /// Ascending view of the resident ages.
    #[inline]
    pub fn as_slice(&self) -> &[Age] {
        &self.v
    }

    /// Insert `age` (must not already be resident). Ages are allocated
    /// monotonically, so the append fast path covers almost every insert.
    #[inline]
    pub fn insert(&mut self, age: Age) {
        match self.v.last() {
            Some(&last) if last >= age => {
                let i = self.v.partition_point(|&a| a < age);
                debug_assert!(self.v.get(i) != Some(&age), "duplicate age {age}");
                self.v.insert(i, age);
            }
            _ => self.v.push(age),
        }
    }

    /// Remove `age`; returns whether it was resident.
    #[inline]
    pub fn remove(&mut self, age: Age) -> bool {
        let i = self.v.partition_point(|&a| a < age);
        if self.v.get(i) == Some(&age) {
            self.v.remove(i);
            true
        } else {
            false
        }
    }

    /// Drop every age.
    #[inline]
    pub fn clear(&mut self) {
        self.v.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_order() {
        let mut s = AgeSet::new();
        for a in [5, 1, 9, 3, 7] {
            s.insert(a);
        }
        assert_eq!(s.as_slice(), &[1, 3, 5, 7, 9]);
        assert_eq!(s.first(), Some(1));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn remove_reports_membership() {
        let mut s = AgeSet::new();
        s.insert(2);
        s.insert(4);
        assert!(s.remove(2));
        assert!(!s.remove(3));
        assert_eq!(s.as_slice(), &[4]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
    }

    #[test]
    fn any_below_checks_the_minimum() {
        let mut s = AgeSet::new();
        assert!(!s.any_below(100));
        s.insert(10);
        assert!(!s.any_below(10));
        assert!(s.any_below(11));
    }
}
