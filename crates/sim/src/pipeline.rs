//! The out-of-order pipeline: fetch → dispatch → issue → execute →
//! memory → commit, with the LSQ design as a pluggable backend.
//!
//! ## Cycle order
//!
//! Within a simulated cycle the stages run oldest-work-first:
//!
//! 1. **complete** — ops whose functional-unit latency expires this cycle
//!    write back and wake their consumers; finished address computations
//!    are handed to the LSQ ([`samie_lsq::LoadStoreQueue::address_ready`]).
//! 2. **LSQ tick** — AddrBuffer promotion and occupancy integration.
//! 3. **commit** — up to `commit_width` finished ops leave the ROB head;
//!    stores perform their D-cache write here (through a port). The
//!    deadlock-avoidance check (§3.3) fires first: a ROB head still parked
//!    in the AddrBuffer can never be freed by in-order commit, so the
//!    pipeline is flushed and replayed.
//! 4. **memory issue** — disambiguated loads with satisfied readyBit
//!    ordering either take a forward or access the D-cache via a port.
//! 5. **issue** — ready ops go to functional units (address generation for
//!    memory ops runs on the integer ALUs).
//! 6. **dispatch** — fetch queue → ROB (+ LSQ dispatch for memory ops).
//! 7. **fetch** — trace/replay → fetch queue, guided by the branch
//!    predictor, BTB and L1 I-cache; a mispredicted branch blocks fetch
//!    until it resolves plus a redirect penalty.
//!
//! ## Replay
//!
//! The only squashes in this trace-driven model are whole-pipeline flushes
//! (deadlock avoidance and LSQ no-space, both counted for Figure 6). All
//! uncommitted ops are pushed into a replay buffer and re-fetched with
//! fresh ages, which preserves dependency distances (they are relative to
//! dynamic program order).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mem_hier::{AccessKind, Cache, DataMemory, DcacheAccessMode};
use samie_lsq::{Age, CachePlan, ForwardStatus, LoadStoreQueue, MemOp, PlaceOutcome};
use trace_isa::{FuKind, MicroOp, OpClass, TraceSource};

use crate::ageset::AgeSet;
use crate::config::SimConfig;
use crate::fu::FuScoreboard;
use crate::predictor::{BranchPredictor, Btb};
use crate::stats::SimStats;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecState {
    /// Waiting for operands (in an issue queue).
    Waiting,
    /// Issued to a functional unit / memory.
    Executing,
    /// Result produced; may commit.
    Done,
}

/// Memory-op progress past address generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemPhase {
    /// Not a memory op, or address not yet generated.
    PreAgen,
    /// Address handed to the LSQ (placed or buffered); loads wait here for
    /// disambiguation + readyBit.
    InLsq,
    /// Load issued to memory / forwarded; store finished (writes at
    /// commit).
    Finished,
}

#[derive(Debug)]
struct RobEntry {
    age: Age,
    op: MicroOp,
    state: ExecState,
    mem_phase: MemPhase,
    /// Producers still outstanding (0 → ready to issue).
    waiting_on: u8,
    /// Ages of dependents registered for wake-up.
    consumers: Vec<Age>,
    /// Occupies an issue-queue slot (dispatch gate accounting).
    in_iq: bool,
}

/// The simulator. Generic over the LSQ design (`L`) and trace source
/// (`T`) so every paper experiment is a type instantiation, not a flag.
pub struct Simulator<L: LoadStoreQueue, T: TraceSource> {
    cfg: SimConfig,
    lsq: L,
    trace: T,
    mem: DataMemory,
    icache: Cache,
    predictor: BranchPredictor,
    btb: Btb,
    fu: FuScoreboard,

    now: u64,
    next_age: Age,
    /// Ops pulled from the trace source so far (batch granularity) — the
    /// prefix length a recording must capture to replay this run.
    trace_ops: u64,

    fetch_queue: VecDeque<(Age, MicroOp)>,
    /// Ops pulled from the trace ahead of fetch ([`TRACE_BATCH`] at a
    /// time, amortising the generator's per-call work).
    trace_buf: VecDeque<MicroOp>,
    replay: VecDeque<MicroOp>,
    /// Mispredicted branch blocking fetch until it resolves.
    fetch_blocked_on: Option<Age>,
    /// Earliest cycle fetch may run (redirect/flush/I-miss penalties).
    fetch_resume_at: u64,
    last_fetch_line: u64,

    rob: VecDeque<RobEntry>,
    iq_int: usize,
    iq_fp: usize,

    ready_int: AgeSet,
    ready_fp: AgeSet,
    /// Loads past agen awaiting forward/cache access.
    pending_loads: AgeSet,
    /// In-flight stores whose address is still unknown (readyBit source).
    unknown_store_addrs: AgeSet,
    /// Ops whose computed address the LSQ refused outright (no space even
    /// in the AddrBuffer). They retry each cycle — the paper's §3.3
    /// alternative of holding the address computation until space is
    /// guaranteed. Stores here stay in `unknown_store_addrs` (they have
    /// not been disambiguated against anything).
    lsq_retry: VecDeque<Age>,

    completions: BinaryHeap<Reverse<(u64, Age)>>,

    stats: SimStats,
    last_commit_cycle: u64,
    scratch_promoted: Vec<Age>,
    /// Per-cycle working copy of a ready set / the pending loads (reused
    /// so the stages allocate nothing in steady state).
    scratch_ages: Vec<Age>,
    /// Recycled consumer lists (capacity survives an op's retirement, so
    /// wake-up registration stops allocating once the pool is warm).
    consumer_pool: Vec<Vec<Age>>,
}

/// Ops pulled from the trace source per refill of the fetch-side buffer.
const TRACE_BATCH: usize = 64;

impl<L: LoadStoreQueue, T: TraceSource> Simulator<L, T> {
    /// Build a simulator.
    pub fn new(cfg: SimConfig, lsq: L, trace: T) -> Self {
        cfg.validate().expect("invalid simulator configuration");
        Simulator {
            mem: DataMemory::new(cfg.mem),
            icache: Cache::new(cfg.l1i),
            predictor: BranchPredictor::paper(),
            btb: Btb::paper(),
            fu: FuScoreboard::paper(),
            now: 0,
            next_age: 1,
            trace_ops: 0,
            fetch_queue: VecDeque::with_capacity(cfg.fetch_queue),
            trace_buf: VecDeque::with_capacity(TRACE_BATCH),
            replay: VecDeque::new(),
            fetch_blocked_on: None,
            fetch_resume_at: 0,
            last_fetch_line: u64::MAX,
            rob: VecDeque::with_capacity(cfg.rob_size),
            iq_int: 0,
            iq_fp: 0,
            ready_int: AgeSet::new(),
            ready_fp: AgeSet::new(),
            pending_loads: AgeSet::new(),
            unknown_store_addrs: AgeSet::new(),
            lsq_retry: VecDeque::new(),
            completions: BinaryHeap::new(),
            stats: SimStats::default(),
            last_commit_cycle: 0,
            scratch_promoted: Vec::new(),
            scratch_ages: Vec::new(),
            consumer_pool: Vec::new(),
            cfg,
            lsq,
            trace,
        }
    }

    /// The paper's core configuration around `lsq`.
    pub fn paper(lsq: L, trace: T) -> Self {
        Simulator::new(SimConfig::paper(), lsq, trace)
    }

    /// The LSQ under study.
    pub fn lsq(&self) -> &L {
        &self.lsq
    }

    /// Mutable access to the LSQ (experiment-specific statistics).
    pub fn lsq_mut(&mut self) -> &mut L {
        &mut self.lsq
    }

    /// The data-memory hierarchy.
    pub fn mem(&self) -> &DataMemory {
        &self.mem
    }

    /// Ops pulled from the trace source so far (in 64-op batch refills,
    /// so this slightly over-counts what fetch actually used).
    /// A recording of this many ops replays the run bit-identically —
    /// the `SimSession` record mode is built on it.
    pub fn trace_ops_pulled(&self) -> u64 {
        self.trace_ops
    }

    /// Statistics of the measured interval so far (finalised copy).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.l1d = *self.mem.l1d().stats();
        s.l2 = *self.mem.l2().stats();
        s.l1i = *self.icache.stats();
        s.dtlb_accesses = self.mem.dtlb().accesses();
        s.dtlb_misses = self.mem.dtlb().misses();
        s.lsq = *self.lsq.activity();
        s
    }

    /// Run until `instructions` more have committed; returns final stats.
    pub fn run(&mut self, instructions: u64) -> SimStats {
        let target = self.stats.committed + instructions;
        while self.stats.committed < target {
            self.step();
        }
        self.stats()
    }

    /// Run `instructions` then discard all statistics (cache/predictor/LSQ
    /// state is kept) — the paper's warm-up protocol.
    pub fn warm_up(&mut self, instructions: u64) {
        self.run(instructions);
        self.stats = SimStats::default();
        self.mem.reset_stats();
        self.icache.reset_stats();
        self.lsq.reset_activity();
        self.last_commit_cycle = self.now;
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        self.complete_stage();
        let mut promoted = std::mem::take(&mut self.scratch_promoted);
        promoted.clear();
        self.lsq.tick(&mut promoted);
        // Promoted stores become complete (they were held back while in
        // the AddrBuffer so they could not commit undisambiguated).
        for &age in &promoted {
            if let Some(e) = self.entry(age) {
                if e.op.class == OpClass::Store {
                    self.entry_mut(age).unwrap().mem_phase = MemPhase::Finished;
                    self.mark_done(age);
                }
            }
        }
        self.scratch_promoted = promoted;
        self.drain_lsq_retry();
        self.commit_stage();
        self.memory_issue_stage();
        self.issue_stage();
        self.dispatch_stage();
        self.fetch_stage();
        self.stats.cycles += 1;
        self.now += 1;
        assert!(
            self.now - self.last_commit_cycle < self.cfg.watchdog_cycles,
            "no commit for {} cycles at cycle {} (rob head: {:?})",
            self.cfg.watchdog_cycles,
            self.now,
            self.rob
                .front()
                .map(|e| (e.age, e.op.class, e.state, e.mem_phase)),
        );
    }

    // ---- ROB helpers -------------------------------------------------

    #[inline]
    fn rob_index(&self, age: Age) -> Option<usize> {
        let front = self.rob.front()?.age;
        if age < front {
            return None;
        }
        let i = (age - front) as usize;
        debug_assert!(i < self.rob.len() && self.rob[i].age == age);
        Some(i)
    }

    fn entry(&self, age: Age) -> Option<&RobEntry> {
        self.rob_index(age).map(|i| &self.rob[i])
    }

    fn entry_mut(&mut self, age: Age) -> Option<&mut RobEntry> {
        self.rob_index(age).map(move |i| &mut self.rob[i])
    }

    // ---- stage 1: completion ------------------------------------------

    fn complete_stage(&mut self) {
        while let Some(&Reverse((cycle, age))) = self.completions.peek() {
            if cycle > self.now {
                break;
            }
            self.completions.pop();
            // The op may have been flushed since scheduling.
            if self.entry(age).is_none() {
                continue;
            }
            self.finish_execution(age);
        }
    }

    /// An op's FU latency expired. A memory op completes twice: once when
    /// its address generation finishes (it then meets the LSQ) and — for
    /// loads — once more when its datum arrives; `mem_phase` tells the two
    /// events apart.
    fn finish_execution(&mut self, age: Age) {
        let e = self.entry(age).expect("completing a flushed op");
        let (op, phase) = (e.op, e.mem_phase);
        match op.class {
            OpClass::Load | OpClass::Store if phase == MemPhase::PreAgen => {
                self.agen_complete(age, op);
            }
            OpClass::Load => {
                debug_assert_eq!(phase, MemPhase::Finished, "load datum without memory issue");
                self.mark_done(age);
            }
            OpClass::Store => unreachable!("stores complete exactly once (at agen)"),
            _ => {
                if op.class.is_branch() {
                    self.resolve_branch(age);
                }
                self.mark_done(age);
            }
        }
    }

    fn agen_complete(&mut self, age: Age, op: MicroOp) {
        if !self.lsq_admit(age, op) {
            self.lsq_retry.push_back(age);
        }
    }

    /// Offer a computed address to the LSQ. Returns false on
    /// [`PlaceOutcome::NoSpace`] (the op must retry).
    fn lsq_admit(&mut self, age: Age, op: MicroOp) -> bool {
        let is_store = op.class == OpClass::Store;
        let outcome = self.lsq.address_ready(age);
        if outcome == PlaceOutcome::NoSpace {
            return false;
        }
        if is_store {
            // readyBit (§3.1): the store's address is now known.
            self.unknown_store_addrs.remove(age);
            // The store's datum is produced with its address; it forwards
            // from the LSQ (once placed) and writes the cache at commit.
            self.lsq.store_executed(age);
        }
        let e = self.entry_mut(age).expect("agen for a flushed op");
        e.mem_phase = MemPhase::InLsq;
        if is_store {
            if outcome == PlaceOutcome::Placed {
                // A store parked in the AddrBuffer is *not* complete: it
                // has not been disambiguated, so it must not commit until
                // promoted (the ROB-head deadlock check handles the stuck
                // case).
                self.entry_mut(age).unwrap().mem_phase = MemPhase::Finished;
                self.mark_done(age);
            }
        } else {
            self.pending_loads.insert(age);
        }
        true
    }

    /// Retry addresses the LSQ refused, oldest-arrival first.
    fn drain_lsq_retry(&mut self) {
        while let Some(&age) = self.lsq_retry.front() {
            let Some(e) = self.entry(age) else {
                self.lsq_retry.pop_front(); // flushed meanwhile
                continue;
            };
            let op = e.op;
            if self.lsq_admit(age, op) {
                self.lsq_retry.pop_front();
            } else {
                break;
            }
        }
    }

    fn resolve_branch(&mut self, age: Age) {
        if self.fetch_blocked_on == Some(age) {
            self.fetch_blocked_on = None;
            self.fetch_resume_at = self.now + 1 + self.cfg.mispredict_redirect as u64;
        }
    }

    /// Mark `age` Done and wake its consumers.
    fn mark_done(&mut self, age: Age) {
        let i = self.rob_index(age).expect("waking a flushed op");
        self.rob[i].state = ExecState::Done;
        let mut consumers = std::mem::take(&mut self.rob[i].consumers);
        for &c in &consumers {
            if let Some(j) = self.rob_index(c) {
                let e = &mut self.rob[j];
                debug_assert!(e.waiting_on > 0);
                e.waiting_on -= 1;
                let wake = e.waiting_on == 0 && e.state == ExecState::Waiting;
                let class = e.op.class;
                if wake {
                    self.push_ready(c, class);
                }
            }
        }
        consumers.clear();
        self.consumer_pool.push(consumers);
    }

    fn push_ready(&mut self, age: Age, class: OpClass) {
        if class.is_fp() {
            self.ready_fp.insert(age);
        } else {
            self.ready_int.insert(age);
        }
    }

    // ---- stage 3: commit ----------------------------------------------

    fn commit_stage(&mut self) {
        // §3.3 deadlock avoidance: a ROB head stuck in the AddrBuffer (or
        // refused by the LSQ entirely) can never be freed by in-order
        // commit — everything older is gone and younger ops hold the
        // entries — so flush and replay. The tick above already gave
        // promotion its chance this cycle.
        if let Some(head) = self.rob.front() {
            if head.op.class.is_mem() {
                if self.lsq.is_buffered(head.age) {
                    self.stats.deadlock_flushes += 1;
                    self.flush_pipeline();
                    return;
                }
                if self.lsq_retry.front() == Some(&head.age) || self.lsq_retry.contains(&head.age) {
                    self.stats.nospace_flushes += 1;
                    self.flush_pipeline();
                    return;
                }
            }
        }
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if head.state != ExecState::Done {
                break;
            }
            let age = head.age;
            let op = head.op;
            match op.class {
                OpClass::Store => {
                    // The cache write needs a port; without one, commit
                    // stalls this cycle.
                    if !self.fu.available(FuKind::MemPort, self.now) {
                        break;
                    }
                    self.fu.try_issue(OpClass::Store, self.now);
                    self.dcache_access(age, op, AccessKind::Write);
                    self.lsq.commit(age);
                    self.stats.stores += 1;
                }
                OpClass::Load => {
                    self.lsq.commit(age);
                    self.stats.loads += 1;
                }
                OpClass::CondBranch => self.stats.branches += 1,
                _ => {}
            }
            self.rob.pop_front();
            self.stats.committed += 1;
            self.last_commit_cycle = self.now;
        }
    }

    /// Access the D-cache for `age` using the LSQ's cached-location /
    /// cached-translation plan, wiring back presentBit maintenance.
    /// Returns the access latency.
    fn dcache_access(&mut self, age: Age, op: MicroOp, kind: AccessKind) -> u32 {
        let mref = op.mem().expect("cache access needs a mem op");
        let plan = self.lsq.cache_access_plan(age);
        let mode = match plan {
            CachePlan {
                location: Some((set, way)),
                ..
            } => DcacheAccessMode::way_known(set, way),
            CachePlan {
                location: None,
                translation: true,
            } => DcacheAccessMode::TRANSLATION_CACHED,
            CachePlan {
                location: None,
                translation: false,
            } => DcacheAccessMode::CONVENTIONAL,
        };
        let result = self.mem.access(mref.addr, kind, mode);
        if plan.location.is_none() {
            // Conventional access: the entry may cache the location (and
            // the line's presentBit is set so replacement notifies us).
            if self.lsq.note_cache_access(age, result.set, result.way) {
                self.mem.set_present_bit(result.set, result.way);
            }
        }
        if let Some(ev) = result.evicted {
            if ev.present_bit {
                self.lsq.on_line_replaced(ev.set, ev.way);
            }
        }
        result.latency
    }

    // ---- stage 4: memory issue ------------------------------------------

    fn memory_issue_stage(&mut self) {
        // Oldest-first among disambiguation-ready loads (working copy: the
        // set is edited mid-walk).
        let mut candidates = std::mem::take(&mut self.scratch_ages);
        candidates.clear();
        candidates.extend_from_slice(self.pending_loads.as_slice());
        for &age in &candidates {
            if self.entry(age).is_none() {
                self.pending_loads.remove(age);
                continue;
            }
            // A buffered load cannot be disambiguated yet (§3.1).
            if self.lsq.is_buffered(age) {
                continue;
            }
            // readyBit: every older store address must be known.
            if self.unknown_store_addrs.any_below(age) {
                continue;
            }
            match self.lsq.load_forward_status(age) {
                ForwardStatus::Wait => continue,
                ForwardStatus::Forward { store } => {
                    self.lsq.take_forward(age, store);
                    self.lsq.load_data_arrived(age);
                    self.stats.forwarded_loads += 1;
                    self.pending_loads.remove(age);
                    self.entry_mut(age).unwrap().mem_phase = MemPhase::Finished;
                    self.completions.push(Reverse((self.now + 1, age)));
                    self.entry_mut(age).unwrap().state = ExecState::Executing;
                }
                ForwardStatus::AccessCache => {
                    if !self.fu.available(FuKind::MemPort, self.now) {
                        break; // out of ports this cycle
                    }
                    self.fu.try_issue(OpClass::Load, self.now);
                    let op = self.entry(age).unwrap().op;
                    let latency = self.dcache_access(age, op, AccessKind::Read);
                    self.lsq.load_data_arrived(age);
                    self.pending_loads.remove(age);
                    let e = self.entry_mut(age).unwrap();
                    e.mem_phase = MemPhase::Finished;
                    e.state = ExecState::Executing;
                    self.completions
                        .push(Reverse((self.now + latency.max(1) as u64, age)));
                }
            }
        }
        self.scratch_ages = candidates;
    }

    // ---- stage 5: issue --------------------------------------------------

    fn issue_stage(&mut self) {
        self.issue_side(false);
        self.issue_side(true);
    }

    fn issue_side(&mut self, fp: bool) {
        let width = if fp {
            self.cfg.issue_width_fp
        } else {
            self.cfg.issue_width_int
        };
        // Working copy: the ready set is edited as ops issue.
        let mut ready = std::mem::take(&mut self.scratch_ages);
        ready.clear();
        ready.extend_from_slice(if fp {
            self.ready_fp.as_slice()
        } else {
            self.ready_int.as_slice()
        });
        let mut issued = 0;
        // Unit pools only get busier within a cycle, so once a kind
        // rejects an op it rejects every younger one too — skip them
        // instead of re-scanning the scoreboard, and stop outright once
        // every kind this side issues to is exhausted.
        let mut exhausted_kinds = 0u8;
        let side_kinds = if fp {
            1u8 << FuKind::FpAlu as u8 | 1u8 << FuKind::FpMulDiv as u8
        } else {
            1u8 << FuKind::IntAlu as u8 | 1u8 << FuKind::IntMulDiv as u8
        };
        for &age in &ready {
            if issued == width {
                break;
            }
            let Some(i) = self.rob_index(age) else {
                // Flushed while ready.
                if fp {
                    self.ready_fp.remove(age);
                } else {
                    self.ready_int.remove(age);
                }
                continue;
            };
            let class = self.rob[i].op.class;
            // Memory ops run their address generation on an integer ALU.
            let agen_class = if class.is_mem() {
                OpClass::IntAlu
            } else {
                class
            };
            let kind_bit = 1u8 << trace_isa::latency::fu_kind(agen_class) as u8;
            if exhausted_kinds & kind_bit != 0 {
                continue; // structural hazard; try a younger ready op
            }
            let Some(done) = self.fu.try_issue(agen_class, self.now) else {
                exhausted_kinds |= kind_bit;
                if exhausted_kinds & side_kinds == side_kinds {
                    break;
                }
                continue; // structural hazard; try a younger ready op
            };
            let e = &mut self.rob[i];
            e.state = ExecState::Executing;
            e.in_iq = false;
            if class.is_fp() {
                self.iq_fp -= 1;
                self.ready_fp.remove(age);
            } else {
                self.iq_int -= 1;
                self.ready_int.remove(age);
            }
            self.completions.push(Reverse((done, age)));
            issued += 1;
        }
        self.scratch_ages = ready;
    }

    // ---- stage 6: dispatch ----------------------------------------------

    fn dispatch_stage(&mut self) {
        for _ in 0..self.cfg.dispatch_width {
            let Some(&(age, op)) = self.fetch_queue.front() else {
                break;
            };
            if self.rob.len() == self.cfg.rob_size {
                break;
            }
            let fp = op.class.is_fp();
            if fp && self.iq_fp == self.cfg.iq_fp {
                break;
            }
            if !fp && self.iq_int == self.cfg.iq_int {
                break;
            }
            if op.class.is_mem() && !self.lsq.can_dispatch(op.class.is_store()) {
                break;
            }
            self.fetch_queue.pop_front();

            // Resolve producers and register for wake-up.
            let mut waiting = 0u8;
            for d in op.deps {
                if d == 0 || d as u64 > age {
                    continue;
                }
                let producer = age - d as u64;
                if let Some(j) = self.rob_index(producer) {
                    if self.rob[j].state != ExecState::Done {
                        self.rob[j].consumers.push(age);
                        waiting += 1;
                    }
                }
                // Producer already retired → operand ready.
            }

            if op.class.is_mem() {
                let mref = op.mem().expect("well-formed mem op");
                let mop = if op.class == OpClass::Store {
                    self.unknown_store_addrs.insert(age);
                    MemOp::store(age, mref)
                } else {
                    MemOp::load(age, mref)
                };
                self.lsq.dispatch(mop);
            }

            if fp {
                self.iq_fp += 1;
            } else {
                self.iq_int += 1;
            }
            self.rob.push_back(RobEntry {
                age,
                op,
                state: ExecState::Waiting,
                mem_phase: MemPhase::PreAgen,
                waiting_on: waiting,
                consumers: self.consumer_pool.pop().unwrap_or_default(),
                in_iq: true,
            });
            if waiting == 0 {
                self.push_ready(age, op.class);
            }
        }
    }

    // ---- stage 7: fetch ---------------------------------------------------

    fn fetch_stage(&mut self) {
        if self.fetch_blocked_on.is_some() || self.now < self.fetch_resume_at {
            self.stats.fetch_blocked_cycles += 1;
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_queue.len() == self.cfg.fetch_queue {
                break;
            }
            let op = match self.replay.pop_front() {
                Some(op) => op,
                None => match self.trace_buf.pop_front() {
                    Some(op) => op,
                    None => {
                        self.trace.next_batch(&mut self.trace_buf, TRACE_BATCH);
                        self.trace_ops += self.trace_buf.len() as u64;
                        self.trace_buf
                            .pop_front()
                            .expect("trace sources are infinite")
                    }
                },
            };
            // I-cache: charged once per new line.
            let line = op.pc & !(self.cfg.l1i.line_bytes as u64 - 1);
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                let out = self.icache.access(op.pc, AccessKind::Read);
                if !out.hit {
                    // Refill from L2; fetch resumes afterwards.
                    self.fetch_resume_at = self.now + self.cfg.mem.l2.hit_latency as u64;
                }
            }
            let age = self.next_age;
            self.next_age += 1;
            self.fetch_queue.push_back((age, op));

            if let Some(info) = op.branch_info() {
                let (predicted_taken, predicted_target) = match op.class {
                    OpClass::CondBranch => {
                        let dir = self.predictor.predict(op.pc);
                        self.predictor.update(op.pc, info.taken);
                        (dir, self.btb.lookup(op.pc))
                    }
                    _ => (true, self.btb.lookup(op.pc)),
                };
                if info.taken {
                    self.btb.update(op.pc, info.target);
                }
                let target_ok =
                    !info.taken || (predicted_taken && predicted_target == Some(info.target));
                let correct = predicted_taken == info.taken && target_ok;
                if !correct {
                    self.stats.mispredicts += 1;
                    self.fetch_blocked_on = Some(age);
                    break;
                }
                if info.taken {
                    // Correctly predicted taken branches end the fetch group.
                    break;
                }
            }
            if self.now < self.fetch_resume_at {
                break; // I-miss stall takes effect after this op
            }
        }
    }

    // ---- flush -------------------------------------------------------------

    /// Whole-pipeline flush (§3.3): every uncommitted op is replayed.
    fn flush_pipeline(&mut self) {
        let mut replay: VecDeque<MicroOp> = self.rob.iter().map(|e| e.op).collect();
        replay.extend(self.fetch_queue.iter().map(|&(_, op)| op));
        replay.append(&mut self.replay);
        self.replay = replay;

        for e in self.rob.drain(..) {
            let mut consumers = e.consumers;
            consumers.clear();
            self.consumer_pool.push(consumers);
        }
        self.fetch_queue.clear();
        self.ready_int.clear();
        self.ready_fp.clear();
        self.pending_loads.clear();
        self.unknown_store_addrs.clear();
        self.lsq_retry.clear();
        self.completions.clear();
        self.iq_int = 0;
        self.iq_fp = 0;
        self.fetch_blocked_on = None;
        self.fetch_resume_at = self.now + 1 + self.cfg.mispredict_redirect as u64;
        self.lsq.flush_all();
    }
}
