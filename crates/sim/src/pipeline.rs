//! The out-of-order pipeline: fetch → dispatch → issue → execute →
//! memory → commit, with the LSQ design as a pluggable backend.
//!
//! ## Cycle order
//!
//! Within a simulated cycle the stages run oldest-work-first:
//!
//! 1. **complete** — ops whose functional-unit latency expires this cycle
//!    write back and wake their consumers; finished address computations
//!    are handed to the LSQ ([`samie_lsq::LoadStoreQueue::address_ready`]).
//! 2. **LSQ tick** — AddrBuffer promotion and occupancy integration.
//! 3. **commit** — up to `commit_width` finished ops leave the ROB head;
//!    stores perform their D-cache write here (through a port). The
//!    deadlock-avoidance check (§3.3) fires first: a ROB head still parked
//!    in the AddrBuffer can never be freed by in-order commit, so the
//!    pipeline is flushed and replayed.
//! 4. **memory issue** — disambiguated loads with satisfied readyBit
//!    ordering either take a forward or access the D-cache via a port.
//! 5. **issue** — ready ops go to functional units (address generation for
//!    memory ops runs on the integer ALUs).
//! 6. **dispatch** — fetch queue → ROB (+ LSQ dispatch for memory ops).
//! 7. **fetch** — trace/replay → fetch queue, guided by the branch
//!    predictor, BTB and L1 I-cache; a mispredicted branch blocks fetch
//!    until it resolves plus a redirect penalty.
//!
//! ## Hot-loop layout and event-driven cycle skipping
//!
//! In-flight ops live in a struct-of-arrays reorder buffer (`Rob`):
//! the per-op record is split into parallel arrays indexed by the dense
//! slot id `age - front_age` (ages are assigned sequentially at fetch and
//! flushes clear the whole window, so the ROB is a dense age-indexed
//! window). The commit scan touches only the `state` array, the wake-up
//! walk only `waiting_on`/`state`, instead of dragging whole entries
//! through the cache.
//!
//! Every stage reports how many units of work it performed. A cycle with
//! zero events across all stages cannot unblock itself: every gate is a
//! pure function of the (unchanged) pipeline state and the clock, and the
//! clock only matters through three kinds of timer — scheduled
//! completions, the fetch resume cycle, and functional-unit releases. So
//! when a cycle performs no events (and no refused address is waiting in
//! the LSQ retry queue, whose re-admission attempts charge LSQ activity),
//! the simulator jumps straight to the earliest such timer, bulk-charging
//! the per-cycle accounting (`stats.cycles`, LSQ occupancy integration
//! via [`samie_lsq::LoadStoreQueue::tick_idle`], fetch-blocked cycles) so
//! all statistics stay cycle-exact — runs with skipping on and off are
//! bit-identical. The jump is capped just short of the watchdog so a
//! genuinely stuck pipeline still trips the same assert on the same
//! cycle.
//!
//! ## Replay
//!
//! The only squashes in this trace-driven model are whole-pipeline flushes
//! (deadlock avoidance and LSQ no-space, both counted for Figure 6). All
//! uncommitted ops are pushed into a replay buffer and re-fetched with
//! fresh ages, which preserves dependency distances (they are relative to
//! dynamic program order).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mem_hier::{AccessKind, Cache, DataMemory, DcacheAccessMode};
use samie_lsq::{Age, CachePlan, ForwardStatus, LoadStoreQueue, MemOp, PlaceOutcome};
use trace_isa::{FuKind, MicroOp, OpClass, TraceSource};

use crate::ageset::AgeSet;
use crate::config::SimConfig;
use crate::fu::FuScoreboard;
use crate::predictor::{BranchPredictor, Btb};
use crate::profile::{NoProbe, PipelineProbe, Stage};
use crate::stats::SimStats;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecState {
    /// Waiting for operands (in an issue queue).
    Waiting,
    /// Issued to a functional unit / memory.
    Executing,
    /// Result produced; may commit.
    Done,
}

/// Memory-op progress past address generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemPhase {
    /// Not a memory op, or address not yet generated.
    PreAgen,
    /// Address handed to the LSQ (placed or buffered); loads wait here for
    /// disambiguation + readyBit.
    InLsq,
    /// Load issued to memory / forwarded; store finished (writes at
    /// commit).
    Finished,
}

/// Struct-of-arrays reorder buffer. One logical entry per in-flight op,
/// split into parallel arrays indexed by the dense slot id
/// `age - age0`: ages are assigned sequentially at fetch, dispatch pushes
/// them in order, and the only squashes are whole-window flushes, so the
/// ROB is always a contiguous age range.
#[derive(Debug)]
struct Rob {
    /// Age of the front entry (meaningful only while non-empty).
    age0: Age,
    op: VecDeque<MicroOp>,
    state: VecDeque<ExecState>,
    mem_phase: VecDeque<MemPhase>,
    /// Producers still outstanding (0 → ready to issue).
    waiting_on: VecDeque<u8>,
    /// Ages of dependents registered for wake-up.
    consumers: VecDeque<Vec<Age>>,
}

impl Rob {
    fn with_capacity(cap: usize) -> Self {
        Rob {
            age0: 0,
            op: VecDeque::with_capacity(cap),
            state: VecDeque::with_capacity(cap),
            mem_phase: VecDeque::with_capacity(cap),
            waiting_on: VecDeque::with_capacity(cap),
            consumers: VecDeque::with_capacity(cap),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.op.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.op.is_empty()
    }

    /// Slot id of `age`, or `None` if the op is not in the window (it
    /// committed or was flushed — flushed ages are never re-used, so any
    /// stale age falls below `age0`).
    #[inline]
    fn index(&self, age: Age) -> Option<usize> {
        if self.op.is_empty() || age < self.age0 {
            return None;
        }
        let i = (age - self.age0) as usize;
        debug_assert!(i < self.op.len(), "age {age} beyond the ROB window");
        Some(i)
    }

    fn push_back(&mut self, age: Age, op: MicroOp, waiting: u8, consumers: Vec<Age>) {
        if self.op.is_empty() {
            self.age0 = age;
        }
        debug_assert_eq!(
            self.age0 + self.op.len() as u64,
            age,
            "ROB ages must be dense"
        );
        self.op.push_back(op);
        self.state.push_back(ExecState::Waiting);
        self.mem_phase.push_back(MemPhase::PreAgen);
        self.waiting_on.push_back(waiting);
        self.consumers.push_back(consumers);
    }

    /// Pop the front entry, returning its consumer list for recycling.
    fn pop_front(&mut self) -> Vec<Age> {
        self.age0 += 1;
        self.op.pop_front();
        self.state.pop_front();
        self.mem_phase.pop_front();
        self.waiting_on.pop_front();
        self.consumers.pop_front().expect("pop from an empty ROB")
    }

    /// Drop every entry, recycling consumer lists into `pool`.
    fn clear_into(&mut self, pool: &mut Vec<Vec<Age>>) {
        self.op.clear();
        self.state.clear();
        self.mem_phase.clear();
        self.waiting_on.clear();
        for mut consumers in self.consumers.drain(..) {
            consumers.clear();
            pool.push(consumers);
        }
    }

    /// Front-entry summary for the watchdog panic message.
    fn front_debug(&self) -> Option<(Age, OpClass, ExecState, MemPhase)> {
        if self.is_empty() {
            None
        } else {
            Some((
                self.age0,
                self.op[0].class,
                self.state[0],
                self.mem_phase[0],
            ))
        }
    }
}

/// The simulator. Generic over the LSQ design (`L`) and trace source
/// (`T`) so every paper experiment is a type instantiation, not a flag.
pub struct Simulator<L: LoadStoreQueue, T: TraceSource> {
    cfg: SimConfig,
    lsq: L,
    trace: T,
    mem: DataMemory,
    icache: Cache,
    predictor: BranchPredictor,
    btb: Btb,
    fu: FuScoreboard,

    now: u64,
    next_age: Age,
    /// Ops pulled from the trace source so far (batch granularity) — the
    /// prefix length a recording must capture to replay this run.
    trace_ops: u64,

    fetch_queue: VecDeque<(Age, MicroOp)>,
    /// Ops pulled from the trace ahead of fetch ([`TRACE_BATCH`] at a
    /// time, amortising the generator's per-call work).
    trace_buf: VecDeque<MicroOp>,
    replay: VecDeque<MicroOp>,
    /// Mispredicted branch blocking fetch until it resolves.
    fetch_blocked_on: Option<Age>,
    /// Earliest cycle fetch may run (redirect/flush/I-miss penalties).
    fetch_resume_at: u64,
    last_fetch_line: u64,

    rob: Rob,
    iq_int: usize,
    iq_fp: usize,

    ready_int: AgeSet,
    ready_fp: AgeSet,
    /// Loads past agen awaiting forward/cache access.
    pending_loads: AgeSet,
    /// In-flight stores whose address is still unknown (readyBit source).
    unknown_store_addrs: AgeSet,
    /// Ops whose computed address the LSQ refused outright (no space even
    /// in the AddrBuffer). They retry each cycle — the paper's §3.3
    /// alternative of holding the address computation until space is
    /// guaranteed. Stores here stay in `unknown_store_addrs` (they have
    /// not been disambiguated against anything).
    lsq_retry: VecDeque<Age>,

    completions: BinaryHeap<Reverse<(u64, Age)>>,

    stats: SimStats,
    last_commit_cycle: u64,
    /// Event-driven cycle skipping (on by default). Not part of
    /// [`SimConfig`]: it cannot change any statistic, only wall time.
    skip_enabled: bool,
    /// Cycles jumped over by skipping (already included in
    /// `stats.cycles`; kept separately for diagnostics/profiling).
    skipped_cycles: u64,
    scratch_promoted: Vec<Age>,
    /// Per-cycle working copy of a ready set / the pending loads (reused
    /// so the stages allocate nothing in steady state).
    scratch_ages: Vec<Age>,
    /// Recycled consumer lists (capacity survives an op's retirement, so
    /// wake-up registration stops allocating once the pool is warm).
    consumer_pool: Vec<Vec<Age>>,
}

/// Ops pulled from the trace source per refill of the fetch-side buffer.
const TRACE_BATCH: usize = 64;

impl<L: LoadStoreQueue, T: TraceSource> Simulator<L, T> {
    /// Build a simulator.
    pub fn new(cfg: SimConfig, lsq: L, trace: T) -> Self {
        cfg.validate().expect("invalid simulator configuration");
        Simulator {
            mem: DataMemory::new(cfg.mem),
            icache: Cache::new(cfg.l1i),
            predictor: BranchPredictor::paper(),
            btb: Btb::paper(),
            fu: FuScoreboard::paper(),
            now: 0,
            next_age: 1,
            trace_ops: 0,
            fetch_queue: VecDeque::with_capacity(cfg.fetch_queue),
            trace_buf: VecDeque::with_capacity(TRACE_BATCH),
            replay: VecDeque::new(),
            fetch_blocked_on: None,
            fetch_resume_at: 0,
            last_fetch_line: u64::MAX,
            rob: Rob::with_capacity(cfg.rob_size),
            iq_int: 0,
            iq_fp: 0,
            ready_int: AgeSet::new(),
            ready_fp: AgeSet::new(),
            pending_loads: AgeSet::new(),
            unknown_store_addrs: AgeSet::new(),
            lsq_retry: VecDeque::new(),
            completions: BinaryHeap::new(),
            stats: SimStats::default(),
            last_commit_cycle: 0,
            skip_enabled: true,
            skipped_cycles: 0,
            scratch_promoted: Vec::new(),
            scratch_ages: Vec::new(),
            consumer_pool: Vec::new(),
            cfg,
            lsq,
            trace,
        }
    }

    /// The paper's core configuration around `lsq`.
    pub fn paper(lsq: L, trace: T) -> Self {
        Simulator::new(SimConfig::paper(), lsq, trace)
    }

    /// The LSQ under study.
    pub fn lsq(&self) -> &L {
        &self.lsq
    }

    /// Mutable access to the LSQ (experiment-specific statistics).
    pub fn lsq_mut(&mut self) -> &mut L {
        &mut self.lsq
    }

    /// The data-memory hierarchy.
    pub fn mem(&self) -> &DataMemory {
        &self.mem
    }

    /// Enable/disable event-driven cycle skipping (on by default).
    /// Statistics are bit-identical either way; off exists for
    /// differential testing and single-stepped debugging.
    pub fn set_cycle_skipping(&mut self, enabled: bool) {
        self.skip_enabled = enabled;
    }

    /// Is event-driven cycle skipping enabled?
    pub fn cycle_skipping(&self) -> bool {
        self.skip_enabled
    }

    /// Cycles jumped over by event-driven skipping so far (a subset of
    /// `stats.cycles`, which counts them as simulated).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Ops pulled from the trace source so far (in 64-op batch refills,
    /// so this slightly over-counts what fetch actually used).
    /// A recording of this many ops replays the run bit-identically —
    /// the `SimSession` record mode is built on it.
    pub fn trace_ops_pulled(&self) -> u64 {
        self.trace_ops
    }

    /// Statistics of the measured interval so far (finalised copy).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.l1d = *self.mem.l1d().stats();
        s.l2 = *self.mem.l2().stats();
        s.l1i = *self.icache.stats();
        s.dtlb_accesses = self.mem.dtlb().accesses();
        s.dtlb_misses = self.mem.dtlb().misses();
        s.lsq = *self.lsq.activity();
        s
    }

    /// Run until `instructions` more have committed; returns final stats.
    pub fn run(&mut self, instructions: u64) -> SimStats {
        self.run_with(instructions, &mut NoProbe)
    }

    /// [`run`](Self::run) with a [`PipelineProbe`] observing every stage
    /// (the `samie-exp profile` entry point). `NoProbe` compiles to the
    /// plain hot loop.
    pub fn run_with<P: PipelineProbe>(&mut self, instructions: u64, probe: &mut P) -> SimStats {
        let target = self.stats.committed + instructions;
        while self.stats.committed < target {
            let events = self.step_with(probe);
            // A cycle with zero events cannot unblock itself (see the
            // module docs); jump to the next timer. The retry queue is
            // excluded: re-offering a refused address charges LSQ
            // activity every cycle, so those cycles must be stepped.
            if events == 0 && self.skip_enabled && self.lsq_retry.is_empty() {
                self.skip_ahead(probe);
            }
        }
        self.stats()
    }

    /// Run `instructions` then discard all statistics (cache/predictor/LSQ
    /// state is kept) — the paper's warm-up protocol.
    pub fn warm_up(&mut self, instructions: u64) {
        self.run(instructions);
        self.stats = SimStats::default();
        self.mem.reset_stats();
        self.icache.reset_stats();
        self.lsq.reset_activity();
        self.last_commit_cycle = self.now;
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        self.step_with(&mut NoProbe);
    }

    /// Advance one cycle, reporting per-stage work to `probe`. Returns
    /// the total number of events (zero ⇒ the pipeline made no progress).
    fn step_with<P: PipelineProbe>(&mut self, probe: &mut P) -> u64 {
        probe.enter(Stage::Execute);
        let completed = self.complete_stage();
        probe.exit(Stage::Execute, completed);

        probe.enter(Stage::LsqTick);
        let mut promoted = std::mem::take(&mut self.scratch_promoted);
        promoted.clear();
        self.lsq.tick(&mut promoted);
        // Promoted stores become complete (they were held back while in
        // the AddrBuffer so they could not commit undisambiguated).
        let promotions = promoted.len() as u64;
        for &age in &promoted {
            if let Some(i) = self.rob.index(age) {
                if self.rob.op[i].class == OpClass::Store {
                    self.rob.mem_phase[i] = MemPhase::Finished;
                    self.mark_done(age);
                }
            }
        }
        self.scratch_promoted = promoted;
        let drained = self.drain_lsq_retry();
        probe.exit(Stage::LsqTick, promotions + drained);

        probe.enter(Stage::Commit);
        let committed = self.commit_stage();
        probe.exit(Stage::Commit, committed);

        probe.enter(Stage::Forward);
        let mem_issued = self.memory_issue_stage();
        probe.exit(Stage::Forward, mem_issued);

        probe.enter(Stage::Issue);
        let issued = self.issue_stage();
        probe.exit(Stage::Issue, issued);

        probe.enter(Stage::Dispatch);
        let dispatched = self.dispatch_stage();
        probe.exit(Stage::Dispatch, dispatched);

        probe.enter(Stage::Fetch);
        let fetched = self.fetch_stage();
        probe.exit(Stage::Fetch, fetched);

        self.stats.cycles += 1;
        self.now += 1;
        probe.cycle();
        assert!(
            self.now - self.last_commit_cycle < self.cfg.watchdog_cycles,
            "no commit for {} cycles at cycle {} (rob head: {:?})",
            self.cfg.watchdog_cycles,
            self.now,
            self.rob.front_debug(),
        );
        completed + promotions + drained + committed + mem_issued + issued + dispatched + fetched
    }

    /// Jump from a proven-idle cycle to the earliest cycle at which
    /// anything can happen, bulk-charging the per-cycle accounting so the
    /// statistics are identical to stepping. Caller guarantees the step
    /// just executed performed zero events and the LSQ retry queue is
    /// empty.
    fn skip_ahead<P: PipelineProbe>(&mut self, probe: &mut P) {
        let now = self.now;
        let mut wake = u64::MAX;
        // The three timers that can unblock an idle pipeline:
        // a scheduled completion...
        if let Some(&Reverse((cycle, _))) = self.completions.peek() {
            wake = wake.min(cycle);
        }
        // ...fetch resuming after a redirect/I-miss penalty (irrelevant
        // while fetch waits on a branch: resolution is a completion)...
        if self.fetch_blocked_on.is_none() {
            wake = wake.min(self.fetch_resume_at);
        }
        // ...or a busy functional unit freeing up.
        if let Some(release) = self.fu.earliest_release(now) {
            wake = wake.min(release);
        }
        // Never jump past the last cycle the watchdog allows: if no timer
        // is pending the pipeline is stuck, and stepping from here makes
        // the watchdog fire on exactly the cycle it would have without
        // skipping.
        let cap = self.last_commit_cycle + self.cfg.watchdog_cycles - 1;
        let target = wake.min(cap);
        if target <= now {
            return;
        }
        let k = target - now;
        // Per-cycle accounting the skipped steps would have performed.
        self.stats.cycles += k;
        if self.fetch_blocked_on.is_some() {
            self.stats.fetch_blocked_cycles += k;
        } else if self.fetch_resume_at > now {
            self.stats.fetch_blocked_cycles += k.min(self.fetch_resume_at - now);
        }
        self.lsq.tick_idle(k);
        self.now = target;
        self.skipped_cycles += k;
        probe.skipped(k);
    }

    // ---- stage 1: completion ------------------------------------------

    fn complete_stage(&mut self) -> u64 {
        let mut events = 0;
        while let Some(&Reverse((cycle, age))) = self.completions.peek() {
            if cycle > self.now {
                break;
            }
            self.completions.pop();
            events += 1;
            // The op may have been flushed since scheduling.
            if self.rob.index(age).is_none() {
                continue;
            }
            self.finish_execution(age);
        }
        events
    }

    /// An op's FU latency expired. A memory op completes twice: once when
    /// its address generation finishes (it then meets the LSQ) and — for
    /// loads — once more when its datum arrives; `mem_phase` tells the two
    /// events apart.
    fn finish_execution(&mut self, age: Age) {
        let i = self.rob.index(age).expect("completing a flushed op");
        let op = self.rob.op[i];
        let phase = self.rob.mem_phase[i];
        match op.class {
            OpClass::Load | OpClass::Store if phase == MemPhase::PreAgen => {
                self.agen_complete(age, op);
            }
            OpClass::Load => {
                debug_assert_eq!(phase, MemPhase::Finished, "load datum without memory issue");
                self.mark_done(age);
            }
            OpClass::Store => unreachable!("stores complete exactly once (at agen)"),
            _ => {
                if op.class.is_branch() {
                    self.resolve_branch(age);
                }
                self.mark_done(age);
            }
        }
    }

    fn agen_complete(&mut self, age: Age, op: MicroOp) {
        if !self.lsq_admit(age, op) {
            self.lsq_retry.push_back(age);
        }
    }

    /// Offer a computed address to the LSQ. Returns false on
    /// [`PlaceOutcome::NoSpace`] (the op must retry).
    fn lsq_admit(&mut self, age: Age, op: MicroOp) -> bool {
        let is_store = op.class == OpClass::Store;
        let outcome = self.lsq.address_ready(age);
        if outcome == PlaceOutcome::NoSpace {
            return false;
        }
        if is_store {
            // readyBit (§3.1): the store's address is now known.
            self.unknown_store_addrs.remove(age);
            // The store's datum is produced with its address; it forwards
            // from the LSQ (once placed) and writes the cache at commit.
            self.lsq.store_executed(age);
        }
        let i = self.rob.index(age).expect("agen for a flushed op");
        self.rob.mem_phase[i] = MemPhase::InLsq;
        if is_store {
            if outcome == PlaceOutcome::Placed {
                // A store parked in the AddrBuffer is *not* complete: it
                // has not been disambiguated, so it must not commit until
                // promoted (the ROB-head deadlock check handles the stuck
                // case).
                self.rob.mem_phase[i] = MemPhase::Finished;
                self.mark_done(age);
            }
        } else {
            self.pending_loads.insert(age);
        }
        true
    }

    /// Retry addresses the LSQ refused, oldest-arrival first. Returns the
    /// number of retry-queue entries resolved (admitted or flushed).
    fn drain_lsq_retry(&mut self) -> u64 {
        let mut events = 0;
        while let Some(&age) = self.lsq_retry.front() {
            let Some(i) = self.rob.index(age) else {
                self.lsq_retry.pop_front(); // flushed meanwhile
                events += 1;
                continue;
            };
            let op = self.rob.op[i];
            if self.lsq_admit(age, op) {
                self.lsq_retry.pop_front();
                events += 1;
            } else {
                break;
            }
        }
        events
    }

    fn resolve_branch(&mut self, age: Age) {
        if self.fetch_blocked_on == Some(age) {
            self.fetch_blocked_on = None;
            self.fetch_resume_at = self.now + 1 + self.cfg.mispredict_redirect as u64;
        }
    }

    /// Mark `age` Done and wake its consumers.
    fn mark_done(&mut self, age: Age) {
        let i = self.rob.index(age).expect("waking a flushed op");
        self.rob.state[i] = ExecState::Done;
        let mut consumers = std::mem::take(&mut self.rob.consumers[i]);
        for &c in &consumers {
            if let Some(j) = self.rob.index(c) {
                debug_assert!(self.rob.waiting_on[j] > 0);
                self.rob.waiting_on[j] -= 1;
                let wake = self.rob.waiting_on[j] == 0 && self.rob.state[j] == ExecState::Waiting;
                if wake {
                    let class = self.rob.op[j].class;
                    self.push_ready(c, class);
                }
            }
        }
        consumers.clear();
        self.consumer_pool.push(consumers);
    }

    fn push_ready(&mut self, age: Age, class: OpClass) {
        if class.is_fp() {
            self.ready_fp.insert(age);
        } else {
            self.ready_int.insert(age);
        }
    }

    // ---- stage 3: commit ----------------------------------------------

    fn commit_stage(&mut self) -> u64 {
        // §3.3 deadlock avoidance: a ROB head stuck in the AddrBuffer (or
        // refused by the LSQ entirely) can never be freed by in-order
        // commit — everything older is gone and younger ops hold the
        // entries — so flush and replay. The tick above already gave
        // promotion its chance this cycle.
        if !self.rob.is_empty() {
            let head_age = self.rob.age0;
            if self.rob.op[0].class.is_mem() {
                if self.lsq.is_buffered(head_age) {
                    self.stats.deadlock_flushes += 1;
                    self.flush_pipeline();
                    return 1;
                }
                if self.lsq_retry.front() == Some(&head_age) || self.lsq_retry.contains(&head_age) {
                    self.stats.nospace_flushes += 1;
                    self.flush_pipeline();
                    return 1;
                }
            }
        }
        let mut events = 0;
        for _ in 0..self.cfg.commit_width {
            if self.rob.is_empty() || self.rob.state[0] != ExecState::Done {
                break;
            }
            let age = self.rob.age0;
            let op = self.rob.op[0];
            match op.class {
                OpClass::Store => {
                    // The cache write needs a port; without one, commit
                    // stalls this cycle.
                    if !self.fu.available(FuKind::MemPort, self.now) {
                        break;
                    }
                    self.fu.try_issue(OpClass::Store, self.now);
                    self.dcache_access(age, op, AccessKind::Write);
                    self.lsq.commit(age);
                    self.stats.stores += 1;
                }
                OpClass::Load => {
                    self.lsq.commit(age);
                    self.stats.loads += 1;
                }
                OpClass::CondBranch => self.stats.branches += 1,
                _ => {}
            }
            let consumers = self.rob.pop_front();
            if consumers.capacity() > 0 {
                self.consumer_pool.push(consumers);
            }
            self.stats.committed += 1;
            self.last_commit_cycle = self.now;
            events += 1;
        }
        events
    }

    /// Access the D-cache for `age` using the LSQ's cached-location /
    /// cached-translation plan, wiring back presentBit maintenance.
    /// Returns the access latency.
    fn dcache_access(&mut self, age: Age, op: MicroOp, kind: AccessKind) -> u32 {
        let mref = op.mem().expect("cache access needs a mem op");
        let plan = self.lsq.cache_access_plan(age);
        let mode = match plan {
            CachePlan {
                location: Some((set, way)),
                ..
            } => DcacheAccessMode::way_known(set, way),
            CachePlan {
                location: None,
                translation: true,
            } => DcacheAccessMode::TRANSLATION_CACHED,
            CachePlan {
                location: None,
                translation: false,
            } => DcacheAccessMode::CONVENTIONAL,
        };
        let result = self.mem.access(mref.addr, kind, mode);
        if plan.location.is_none() {
            // Conventional access: the entry may cache the location (and
            // the line's presentBit is set so replacement notifies us).
            if self.lsq.note_cache_access(age, result.set, result.way) {
                self.mem.set_present_bit(result.set, result.way);
            }
        }
        if let Some(ev) = result.evicted {
            if ev.present_bit {
                self.lsq.on_line_replaced(ev.set, ev.way);
            }
        }
        result.latency
    }

    // ---- stage 4: memory issue ------------------------------------------

    fn memory_issue_stage(&mut self) -> u64 {
        let mut events = 0;
        // Oldest-first among disambiguation-ready loads (working copy: the
        // set is edited mid-walk).
        let mut candidates = std::mem::take(&mut self.scratch_ages);
        candidates.clear();
        candidates.extend_from_slice(self.pending_loads.as_slice());
        for &age in &candidates {
            let Some(i) = self.rob.index(age) else {
                self.pending_loads.remove(age);
                events += 1;
                continue;
            };
            // A buffered load cannot be disambiguated yet (§3.1).
            if self.lsq.is_buffered(age) {
                continue;
            }
            // readyBit: every older store address must be known.
            if self.unknown_store_addrs.any_below(age) {
                continue;
            }
            match self.lsq.load_forward_status(age) {
                ForwardStatus::Wait => continue,
                ForwardStatus::Forward { store } => {
                    self.lsq.take_forward(age, store);
                    self.lsq.load_data_arrived(age);
                    self.stats.forwarded_loads += 1;
                    self.pending_loads.remove(age);
                    self.rob.mem_phase[i] = MemPhase::Finished;
                    self.rob.state[i] = ExecState::Executing;
                    self.completions.push(Reverse((self.now + 1, age)));
                    events += 1;
                }
                ForwardStatus::AccessCache => {
                    if !self.fu.available(FuKind::MemPort, self.now) {
                        break; // out of ports this cycle
                    }
                    self.fu.try_issue(OpClass::Load, self.now);
                    let op = self.rob.op[i];
                    let latency = self.dcache_access(age, op, AccessKind::Read);
                    self.lsq.load_data_arrived(age);
                    self.pending_loads.remove(age);
                    self.rob.mem_phase[i] = MemPhase::Finished;
                    self.rob.state[i] = ExecState::Executing;
                    self.completions
                        .push(Reverse((self.now + latency.max(1) as u64, age)));
                    events += 1;
                }
            }
        }
        self.scratch_ages = candidates;
        events
    }

    // ---- stage 5: issue --------------------------------------------------

    fn issue_stage(&mut self) -> u64 {
        self.issue_side(false) + self.issue_side(true)
    }

    fn issue_side(&mut self, fp: bool) -> u64 {
        let width = if fp {
            self.cfg.issue_width_fp
        } else {
            self.cfg.issue_width_int
        };
        let mut events = 0;
        // Working copy: the ready set is edited as ops issue.
        let mut ready = std::mem::take(&mut self.scratch_ages);
        ready.clear();
        ready.extend_from_slice(if fp {
            self.ready_fp.as_slice()
        } else {
            self.ready_int.as_slice()
        });
        let mut issued = 0;
        // Unit pools only get busier within a cycle, so once a kind
        // rejects an op it rejects every younger one too — skip them
        // instead of re-scanning the scoreboard, and stop outright once
        // every kind this side issues to is exhausted.
        let mut exhausted_kinds = 0u8;
        let side_kinds = if fp {
            1u8 << FuKind::FpAlu as u8 | 1u8 << FuKind::FpMulDiv as u8
        } else {
            1u8 << FuKind::IntAlu as u8 | 1u8 << FuKind::IntMulDiv as u8
        };
        for &age in &ready {
            if issued == width {
                break;
            }
            let Some(i) = self.rob.index(age) else {
                // Flushed while ready.
                if fp {
                    self.ready_fp.remove(age);
                } else {
                    self.ready_int.remove(age);
                }
                events += 1;
                continue;
            };
            let class = self.rob.op[i].class;
            // Memory ops run their address generation on an integer ALU.
            let agen_class = if class.is_mem() {
                OpClass::IntAlu
            } else {
                class
            };
            let kind_bit = 1u8 << trace_isa::latency::fu_kind(agen_class) as u8;
            if exhausted_kinds & kind_bit != 0 {
                continue; // structural hazard; try a younger ready op
            }
            let Some(done) = self.fu.try_issue(agen_class, self.now) else {
                exhausted_kinds |= kind_bit;
                if exhausted_kinds & side_kinds == side_kinds {
                    break;
                }
                continue; // structural hazard; try a younger ready op
            };
            self.rob.state[i] = ExecState::Executing;
            if class.is_fp() {
                self.iq_fp -= 1;
                self.ready_fp.remove(age);
            } else {
                self.iq_int -= 1;
                self.ready_int.remove(age);
            }
            self.completions.push(Reverse((done, age)));
            issued += 1;
            events += 1;
        }
        self.scratch_ages = ready;
        events
    }

    // ---- stage 6: dispatch ----------------------------------------------

    fn dispatch_stage(&mut self) -> u64 {
        let mut events = 0;
        for _ in 0..self.cfg.dispatch_width {
            let Some(&(age, op)) = self.fetch_queue.front() else {
                break;
            };
            if self.rob.len() == self.cfg.rob_size {
                break;
            }
            let fp = op.class.is_fp();
            if fp && self.iq_fp == self.cfg.iq_fp {
                break;
            }
            if !fp && self.iq_int == self.cfg.iq_int {
                break;
            }
            if op.class.is_mem() && !self.lsq.can_dispatch(op.class.is_store()) {
                break;
            }
            self.fetch_queue.pop_front();

            // Resolve producers and register for wake-up.
            let mut waiting = 0u8;
            for d in op.deps {
                if d == 0 || d as u64 > age {
                    continue;
                }
                let producer = age - d as u64;
                if let Some(j) = self.rob.index(producer) {
                    if self.rob.state[j] != ExecState::Done {
                        self.rob.consumers[j].push(age);
                        waiting += 1;
                    }
                }
                // Producer already retired → operand ready.
            }

            if op.class.is_mem() {
                let mref = op.mem().expect("well-formed mem op");
                let mop = if op.class == OpClass::Store {
                    self.unknown_store_addrs.insert(age);
                    MemOp::store(age, mref)
                } else {
                    MemOp::load(age, mref)
                };
                self.lsq.dispatch(mop);
            }

            if fp {
                self.iq_fp += 1;
            } else {
                self.iq_int += 1;
            }
            self.rob.push_back(
                age,
                op,
                waiting,
                self.consumer_pool.pop().unwrap_or_default(),
            );
            if waiting == 0 {
                self.push_ready(age, op.class);
            }
            events += 1;
        }
        events
    }

    // ---- stage 7: fetch ---------------------------------------------------

    fn fetch_stage(&mut self) -> u64 {
        if self.fetch_blocked_on.is_some() || self.now < self.fetch_resume_at {
            self.stats.fetch_blocked_cycles += 1;
            return 0;
        }
        let mut events = 0;
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_queue.len() == self.cfg.fetch_queue {
                break;
            }
            let op = match self.replay.pop_front() {
                Some(op) => op,
                None => match self.trace_buf.pop_front() {
                    Some(op) => op,
                    None => {
                        self.trace.next_batch(&mut self.trace_buf, TRACE_BATCH);
                        self.trace_ops += self.trace_buf.len() as u64;
                        self.trace_buf
                            .pop_front()
                            .expect("trace sources are infinite")
                    }
                },
            };
            // I-cache: charged once per new line.
            let line = op.pc & !(self.cfg.l1i.line_bytes as u64 - 1);
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                let out = self.icache.access(op.pc, AccessKind::Read);
                if !out.hit {
                    // Refill from L2; fetch resumes afterwards.
                    self.fetch_resume_at = self.now + self.cfg.mem.l2.hit_latency as u64;
                }
            }
            let age = self.next_age;
            self.next_age += 1;
            self.fetch_queue.push_back((age, op));
            events += 1;

            if let Some(info) = op.branch_info() {
                let (predicted_taken, predicted_target) = match op.class {
                    OpClass::CondBranch => {
                        let dir = self.predictor.predict(op.pc);
                        self.predictor.update(op.pc, info.taken);
                        (dir, self.btb.lookup(op.pc))
                    }
                    _ => (true, self.btb.lookup(op.pc)),
                };
                if info.taken {
                    self.btb.update(op.pc, info.target);
                }
                let target_ok =
                    !info.taken || (predicted_taken && predicted_target == Some(info.target));
                let correct = predicted_taken == info.taken && target_ok;
                if !correct {
                    self.stats.mispredicts += 1;
                    self.fetch_blocked_on = Some(age);
                    break;
                }
                if info.taken {
                    // Correctly predicted taken branches end the fetch group.
                    break;
                }
            }
            if self.now < self.fetch_resume_at {
                break; // I-miss stall takes effect after this op
            }
        }
        events
    }

    // ---- flush -------------------------------------------------------------

    /// Whole-pipeline flush (§3.3): every uncommitted op is replayed.
    fn flush_pipeline(&mut self) {
        let mut replay: VecDeque<MicroOp> = self.rob.op.iter().copied().collect();
        replay.extend(self.fetch_queue.iter().map(|&(_, op)| op));
        replay.append(&mut self.replay);
        self.replay = replay;

        self.rob.clear_into(&mut self.consumer_pool);
        self.fetch_queue.clear();
        self.ready_int.clear();
        self.ready_fp.clear();
        self.pending_loads.clear();
        self.unknown_store_addrs.clear();
        self.lsq_retry.clear();
        self.completions.clear();
        self.iq_int = 0;
        self.iq_fp = 0;
        self.fetch_blocked_on = None;
        self.fetch_resume_at = self.now + 1 + self.cfg.mispredict_redirect as u64;
        self.lsq.flush_all();
    }
}
