//! Hybrid branch predictor and branch target buffer (Table 2).
//!
//! * 2K-entry gshare (global history XOR PC, 2-bit counters)
//! * 2K-entry bimodal (PC-indexed, 2-bit counters)
//! * 1K-entry selector (PC-indexed, 2-bit "chooser" counters)
//! * 2048-entry, 4-way BTB for taken targets
//!
//! Unconditional branches always predict taken and only need the BTB.

/// A 2-bit saturating counter table.
#[derive(Debug, Clone)]
struct CounterTable {
    counters: Vec<u8>,
    mask: u64,
}

impl CounterTable {
    fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        // Initialise weakly taken, the usual reset state.
        CounterTable {
            counters: vec![2; entries],
            mask: entries as u64 - 1,
        }
    }

    #[inline]
    fn index(&self, key: u64) -> usize {
        (key & self.mask) as usize
    }

    fn predict(&self, key: u64) -> bool {
        self.counters[self.index(key)] >= 2
    }

    fn update(&mut self, key: u64, taken: bool) {
        let i = self.index(key);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Hybrid gshare/bimodal predictor with a selector.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    gshare: CounterTable,
    bimodal: CounterTable,
    /// Selector: ≥2 chooses gshare, else bimodal.
    selector: CounterTable,
    history: u64,
    history_bits: u32,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::paper()
    }
}

impl BranchPredictor {
    /// Table 2 configuration: 2K gshare, 2K bimodal, 1K selector.
    pub fn paper() -> Self {
        BranchPredictor::new(2048, 2048, 1024)
    }

    /// Custom-sized predictor (all sizes powers of two).
    pub fn new(gshare: usize, bimodal: usize, selector: usize) -> Self {
        BranchPredictor {
            gshare: CounterTable::new(gshare),
            bimodal: CounterTable::new(bimodal),
            selector: CounterTable::new(selector),
            history: 0,
            history_bits: gshare.trailing_zeros(),
        }
    }

    #[inline]
    fn gshare_key(&self, pc: u64) -> u64 {
        (pc >> 2) ^ (self.history & ((1 << self.history_bits) - 1))
    }

    /// Predict the direction of a conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        if self.selector.predict(pc >> 2) {
            self.gshare.predict(self.gshare_key(pc))
        } else {
            self.bimodal.predict(pc >> 2)
        }
    }

    /// Train with the resolved outcome and advance the global history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let g = self.gshare.predict(self.gshare_key(pc));
        let b = self.bimodal.predict(pc >> 2);
        // Selector trains toward whichever component was right.
        if g != b {
            self.selector.update(pc >> 2, g == taken);
        }
        self.gshare.update(self.gshare_key(pc), taken);
        self.bimodal.update(pc >> 2, taken);
        self.history = (self.history << 1) | taken as u64;
    }
}

/// Branch target buffer: 2048 entries, 4-way set associative, LRU.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<BtbEntry>,
    sets: usize,
    ways: usize,
    stamp: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
    lru: u64,
}

impl Default for Btb {
    fn default() -> Self {
        Self::paper()
    }
}

impl Btb {
    /// Table 2 configuration: 2048 entries, 4-way.
    pub fn paper() -> Self {
        Btb::new(2048, 4)
    }

    /// Custom geometry.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries.is_multiple_of(ways) && (entries / ways).is_power_of_two());
        Btb {
            entries: vec![BtbEntry::default(); entries],
            sets: entries / ways,
            ways,
            stamp: 0,
        }
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    /// Predicted target for a branch at `pc`, if present.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.stamp += 1;
        let set = self.set_of(pc);
        let tag = pc >> 2;
        for w in 0..self.ways {
            let e = &mut self.entries[set * self.ways + w];
            if e.valid && e.tag == tag {
                e.lru = self.stamp;
                return Some(e.target);
            }
        }
        None
    }

    /// Install/refresh the target of a taken branch.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.stamp += 1;
        let set = self.set_of(pc);
        let tag = pc >> 2;
        let base = set * self.ways;
        // Hit: refresh.
        for w in 0..self.ways {
            let e = &mut self.entries[base + w];
            if e.valid && e.tag == tag {
                e.target = target;
                e.lru = self.stamp;
                return;
            }
        }
        // Miss: LRU-fill.
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                let e = &self.entries[base + w];
                if e.valid {
                    e.lru
                } else {
                    0
                }
            })
            .unwrap();
        self.entries[base + victim] = BtbEntry {
            tag,
            target,
            valid: true,
            lru: self.stamp,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = BranchPredictor::paper();
        let pc = 0x400100;
        for _ in 0..32 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
        for _ in 0..32 {
            p.update(pc, false);
        }
        assert!(!p.predict(pc));
    }

    #[test]
    fn learns_an_alternating_pattern_via_gshare() {
        let mut p = BranchPredictor::paper();
        let pc = 0x400200;
        // Train on a strict alternation; gshare (history-based) can track
        // it, so accuracy over the last half of training should be high.
        let mut correct = 0;
        let n = 2000;
        for i in 0..n {
            let taken = i % 2 == 0;
            if i > n / 2 && p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
        }
        let acc = correct as f64 / (n / 2 - 1) as f64;
        assert!(acc > 0.9, "alternating accuracy {acc}");
    }

    #[test]
    fn random_branches_hover_near_chance() {
        let mut p = BranchPredictor::paper();
        let pc = 0x400300;
        let mut x = 0x12345678u64;
        let mut correct = 0;
        let n = 4000;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 40) & 1 == 1;
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
        }
        let acc = correct as f64 / n as f64;
        assert!((0.35..0.65).contains(&acc), "random accuracy {acc}");
    }

    #[test]
    fn btb_roundtrip_and_lru() {
        let mut btb = Btb::new(8, 2); // 4 sets x 2 ways
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        assert_eq!(btb.lookup(0x1004), None);
        // Fill the set of 0x1000 beyond capacity (same set = pc stride 16).
        btb.update(0x1010, 0x3000);
        btb.lookup(0x1010); // make 0x1000 LRU... (refresh 0x1010)
        btb.update(0x1020, 0x4000); // evicts 0x1000
        assert_eq!(btb.lookup(0x1000), None);
        assert_eq!(btb.lookup(0x1020), Some(0x4000));
    }

    #[test]
    fn btb_target_refresh() {
        let mut btb = Btb::paper();
        btb.update(0x5000, 0x100);
        btb.update(0x5000, 0x200);
        assert_eq!(btb.lookup(0x5000), Some(0x200));
    }
}
