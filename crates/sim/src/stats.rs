//! Simulation statistics.

use mem_hier::CacheStats;
use samie_lsq::LsqActivity;

/// Counters accumulated over a measured simulation interval.
///
/// `PartialEq`/`Eq` compare every counter — the equality the
/// `api_regression` suite uses to prove new entry points produce
/// bit-identical results to the ones they replaced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed conditional branches.
    pub branches: u64,
    /// Mispredicted conditional branches (direction or BTB target).
    pub mispredicts: u64,
    /// Deadlock-avoidance pipeline flushes (§3.3 — Figure 6).
    pub deadlock_flushes: u64,
    /// Flushes because an address fit nowhere (DistribLSQ, SharedLSQ and
    /// AddrBuffer all full).
    pub nospace_flushes: u64,
    /// Loads satisfied by store→load forwarding (no D-cache access).
    pub forwarded_loads: u64,
    /// Cycles fetch was blocked on an unresolved mispredicted branch.
    pub fetch_blocked_cycles: u64,
    /// L1 D-cache counters (includes way-known accesses).
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L1 I-cache counters.
    pub l1i: CacheStats,
    /// D-TLB lookups (way-known/translation-cached accesses bypass it).
    pub dtlb_accesses: u64,
    /// D-TLB misses.
    pub dtlb_misses: u64,
    /// LSQ activity ledger (priced by `energy-model`).
    pub lsq: LsqActivity,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction ratio.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Deadlock flushes per million cycles (the Figure 6 metric).
    pub fn deadlocks_per_mcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.deadlock_flushes as f64 * 1e6 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = SimStats {
            cycles: 1000,
            committed: 2500,
            branches: 100,
            mispredicts: 7,
            deadlock_flushes: 3,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mispredict_ratio() - 0.07).abs() < 1e-12);
        assert!((s.deadlocks_per_mcycle() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_ratio(), 0.0);
        assert_eq!(s.deadlocks_per_mcycle(), 0.0);
    }
}
