//! # ooo-sim — out-of-order superscalar timing simulator
//!
//! A trace-driven reimplementation of the substrate the paper built on (an
//! enhanced SimpleScalar `sim-outorder`): an 8-wide out-of-order core with
//! the Table 2 configuration —
//!
//! * fetch/decode/commit width 8, issue width 8 INT + 8 FP,
//! * 64-entry fetch queue, 256-entry ROB, 128+128 issue-queue entries,
//! * hybrid branch predictor (2K gshare + 2K bimodal + 1K selector) with a
//!   2048-entry 4-way BTB,
//! * 6 int ALUs, 3 int mul/div, 4 FP ALUs, 2 FP mul/div, 4 D-cache ports,
//! * the `mem-hier` cache/TLB hierarchy,
//! * a pluggable [`samie_lsq::LoadStoreQueue`] backend — the variable under
//!   study.
//!
//! ## Modelling notes (vs. an execute-driven simulator)
//!
//! * Traces carry resolved branch outcomes; mispredictions are modelled by
//!   stalling fetch until the branch resolves plus a redirect penalty
//!   (no wrong-path instructions are injected).
//! * The paper's readyBit protocol (§3.1) lives here: a load may issue to
//!   memory only when every older store's address is known; the LSQ then
//!   answers forward/access/wait.
//! * The only pipeline flushes are the SAMIE deadlock-avoidance flush
//!   (ROB head stuck in the AddrBuffer, §3.3) and the no-space flush; both
//!   are counted for Figure 6. Flushed instructions are replayed from an
//!   internal buffer with fresh ages.

pub mod ageset;
pub mod config;
pub mod fu;
pub mod pipeline;
#[cfg(test)]
mod pipeline_tests;
pub mod predictor;
pub mod profile;
pub mod stats;

pub use ageset::AgeSet;
pub use config::SimConfig;
pub use pipeline::Simulator;
pub use predictor::{BranchPredictor, Btb};
pub use profile::{NoProbe, PipelineProbe, ProfilingProbe, Stage, StageProfile};
pub use stats::SimStats;
