//! Functional-unit scoreboard.
//!
//! Tracks per-unit availability: pipelined units accept one op per cycle;
//! non-pipelined units (the divides) stay busy for the full latency
//! (Table 2: integer divide 20 cycles, FP divide 12 cycles,
//! non-pipelined).

use trace_isa::latency::{exec_latency, fu_kind};
use trace_isa::{FuKind, OpClass};

/// Scoreboard over all functional-unit pools.
#[derive(Debug, Clone)]
pub struct FuScoreboard {
    /// `busy_until[kind][unit]`: first cycle the unit is free again.
    busy_until: [Vec<u64>; 5],
}

impl Default for FuScoreboard {
    fn default() -> Self {
        Self::paper()
    }
}

impl FuScoreboard {
    /// Table 2 pool sizes.
    pub fn paper() -> Self {
        FuScoreboard {
            busy_until: FuKind::ALL.map(|k| vec![0u64; k.default_count()]),
        }
    }

    /// Custom pool sizes, in [`FuKind::ALL`] order.
    pub fn new(counts: [usize; 5]) -> Self {
        FuScoreboard {
            busy_until: counts.map(|n| vec![0u64; n]),
        }
    }

    #[inline]
    fn pool(&self, kind: FuKind) -> &[u64] {
        &self.busy_until[kind as usize]
    }

    /// Is a unit of `kind` free at `now`?
    pub fn available(&self, kind: FuKind, now: u64) -> bool {
        self.pool(kind).iter().any(|&b| b <= now)
    }

    /// Try to issue an op of `class` at `now`. Returns the cycle its
    /// result is ready, or `None` if every unit is busy.
    pub fn try_issue(&mut self, class: OpClass, now: u64) -> Option<u64> {
        let kind = fu_kind(class);
        let lat = exec_latency(class);
        let unit = self.busy_until[kind as usize]
            .iter_mut()
            .find(|b| **b <= now)?;
        // A pipelined unit can accept a new op next cycle; a
        // non-pipelined one is blocked for the whole operation.
        *unit = if lat.pipelined {
            now + 1
        } else {
            now + lat.cycles as u64
        };
        Some(now + lat.cycles as u64)
    }

    /// Units of `kind` free at `now` (for tests/diagnostics).
    pub fn free_units(&self, kind: FuKind, now: u64) -> usize {
        self.pool(kind).iter().filter(|&&b| b <= now).count()
    }

    /// The first cycle after `now` at which any currently busy unit frees
    /// up, or `None` if every unit is already free. Drives the
    /// simulator's event-driven cycle skipping: a stalled pipeline can
    /// only be unblocked by a unit release, a completion, or a fetch
    /// resume.
    pub fn earliest_release(&self, now: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        for pool in &self.busy_until {
            for &b in pool {
                if b > now {
                    best = Some(best.map_or(b, |x: u64| x.min(b)));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_unit_accepts_back_to_back() {
        let mut fu = FuScoreboard::new([1, 1, 1, 1, 1]);
        assert_eq!(fu.try_issue(OpClass::IntMul, 10), Some(13));
        // Pipelined: busy only this cycle.
        assert!(fu.try_issue(OpClass::IntMul, 10).is_none());
        assert_eq!(fu.try_issue(OpClass::IntMul, 11), Some(14));
    }

    #[test]
    fn non_pipelined_divide_blocks_unit() {
        let mut fu = FuScoreboard::new([1, 1, 1, 1, 1]);
        assert_eq!(fu.try_issue(OpClass::IntDiv, 0), Some(20));
        for c in 1..20 {
            assert!(fu.try_issue(OpClass::IntDiv, c).is_none(), "cycle {c}");
            assert!(
                fu.try_issue(OpClass::IntMul, c).is_none(),
                "mul shares the unit"
            );
        }
        assert!(fu.try_issue(OpClass::IntDiv, 20).is_some());
    }

    #[test]
    fn pools_are_independent() {
        let mut fu = FuScoreboard::new([1, 1, 1, 1, 1]);
        fu.try_issue(OpClass::IntDiv, 0);
        assert!(fu.try_issue(OpClass::IntAlu, 0).is_some());
        assert!(fu.try_issue(OpClass::FpDiv, 0).is_some());
    }

    #[test]
    fn paper_pool_sizes() {
        let fu = FuScoreboard::paper();
        assert_eq!(fu.free_units(FuKind::IntAlu, 0), 6);
        assert_eq!(fu.free_units(FuKind::IntMulDiv, 0), 3);
        assert_eq!(fu.free_units(FuKind::FpAlu, 0), 4);
        assert_eq!(fu.free_units(FuKind::FpMulDiv, 0), 2);
        assert_eq!(fu.free_units(FuKind::MemPort, 0), 4);
    }

    #[test]
    fn six_int_alus_per_cycle() {
        let mut fu = FuScoreboard::paper();
        for _ in 0..6 {
            assert!(fu.try_issue(OpClass::IntAlu, 5).is_some());
        }
        assert!(fu.try_issue(OpClass::IntAlu, 5).is_none());
        assert_eq!(fu.free_units(FuKind::IntAlu, 6), 6);
    }
}
