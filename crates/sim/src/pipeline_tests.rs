//! Pipeline behaviour tests driven by hand-built traces.

use crate::config::SimConfig;
use crate::pipeline::Simulator;
use samie_lsq::{ConventionalLsq, LoadStoreQueue, SamieConfig, SamieLsq, UnboundedLsq};
use trace_isa::{MicroOp, VecTrace};

fn alu_trace() -> VecTrace {
    VecTrace::named(vec![MicroOp::alu(0x1000, [0, 0])], "alu")
}

#[test]
fn independent_alus_reach_high_ipc() {
    let mut sim = Simulator::paper(UnboundedLsq::new(), alu_trace());
    let stats = sim.run(50_000);
    // 8-wide machine, 6 int ALUs, no dependencies: ALU-bound at ~6 IPC.
    assert!(stats.ipc() > 5.0, "ipc = {}", stats.ipc());
    assert!(stats.ipc() <= 6.01, "ipc = {}", stats.ipc());
}

#[test]
fn serial_dependency_chain_limits_ipc_to_one() {
    let trace = VecTrace::named(vec![MicroOp::alu(0x1000, [1, 0])], "chain");
    let mut sim = Simulator::paper(UnboundedLsq::new(), trace);
    let stats = sim.run(10_000);
    assert!(stats.ipc() < 1.05, "ipc = {}", stats.ipc());
    assert!(stats.ipc() > 0.8, "ipc = {}", stats.ipc());
}

#[test]
fn nonpipelined_divides_throttle_throughput() {
    let trace = VecTrace::named(
        vec![MicroOp::compute(0x1000, trace_isa::OpClass::IntDiv, [0, 0])],
        "div",
    );
    let mut sim = Simulator::paper(UnboundedLsq::new(), trace);
    let stats = sim.run(2_000);
    // 3 dividers, 20-cycle non-pipelined: at most 3/20 = 0.15 IPC.
    assert!(stats.ipc() < 0.16, "ipc = {}", stats.ipc());
}

#[test]
fn loads_hit_the_cache_and_commit() {
    // Loads sweeping a 1 KB array: warm after the first pass.
    let ops: Vec<MicroOp> = (0..128)
        .map(|i| MicroOp::load(0x1000 + i * 4, 0x8000 + i * 8, 8, [0, 0]))
        .collect();
    let mut sim = Simulator::paper(UnboundedLsq::new(), VecTrace::named(ops, "loads"));
    let stats = sim.run(20_000);
    assert_eq!(stats.loads + stats.stores + stats.branches, stats.loads);
    assert!(stats.l1d.accesses() > 0);
    assert!(
        stats.l1d.miss_ratio() < 0.1,
        "miss ratio {}",
        stats.l1d.miss_ratio()
    );
    // 4 ports bound load throughput.
    assert!(stats.ipc() <= 4.05, "ipc = {}", stats.ipc());
}

#[test]
fn store_load_forwarding_skips_the_cache() {
    // store A; load A — every load forwards.
    let ops = vec![
        MicroOp::store(0x1000, 0x9000, 8, [0, 0]),
        MicroOp::load(0x1004, 0x9000, 8, [0, 0]),
    ];
    let mut sim = Simulator::paper(ConventionalLsq::paper(), VecTrace::named(ops, "fwd"));
    let stats = sim.run(10_000);
    assert!(
        stats.forwarded_loads * 10 > stats.loads * 9,
        "forwards {} of {} loads",
        stats.forwarded_loads,
        stats.loads
    );
    // Forwarded loads never touch the D-cache; only store commits do.
    assert!(stats.l1d.read_accesses < stats.loads / 5);
}

#[test]
fn well_predicted_loop_fetches_smoothly() {
    // A 9-op loop with a backward branch taken 100 % of the time: the
    // predictor + BTB learn it perfectly.
    let mut ops: Vec<MicroOp> = (0..8)
        .map(|i| MicroOp::alu(0x1000 + i * 4, [0, 0]))
        .collect();
    ops.push(MicroOp::branch(0x1000 + 8 * 4, true, 0x1000, [0, 0]));
    let mut sim = Simulator::paper(UnboundedLsq::new(), VecTrace::named(ops, "loop"));
    let stats = sim.run(20_000);
    assert!(
        stats.mispredict_ratio() < 0.01,
        "mispredicts {}",
        stats.mispredict_ratio()
    );
    // Taken branch each 9 ops bounds fetch: ~9 per 2 cycles... at least 3 IPC.
    assert!(stats.ipc() > 3.0, "ipc = {}", stats.ipc());
}

#[test]
fn random_branches_cost_ipc() {
    // A branch whose direction alternates with period 2 is predictable;
    // compare against one driven by a PRNG embedded in the trace closure.
    let mut x = 0x1234_5678_u64;
    let mut ops = Vec::new();
    for i in 0..4096u64 {
        if i % 4 == 3 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = (x >> 33) & 1 == 1;
            ops.push(MicroOp::branch(
                0x1000 + i * 4,
                taken,
                0x1000 + (i + 2) * 4,
                [0, 0],
            ));
        } else {
            ops.push(MicroOp::alu(0x1000 + i * 4, [0, 0]));
        }
    }
    let mut sim = Simulator::paper(UnboundedLsq::new(), VecTrace::named(ops, "rand-br"));
    let stats = sim.run(40_000);
    assert!(
        stats.mispredict_ratio() > 0.25,
        "ratio {}",
        stats.mispredict_ratio()
    );
    let mut smooth = Simulator::paper(UnboundedLsq::new(), alu_trace());
    let smooth_stats = smooth.run(40_000);
    assert!(
        stats.ipc() < smooth_stats.ipc() * 0.7,
        "{} vs {}",
        stats.ipc(),
        smooth_stats.ipc()
    );
}

#[test]
fn aliasing_loads_forward_from_inflight_stores() {
    // Each iteration: a slow divide (stalls the commit pointer), then a
    // store and an aliasing load. The divide backlog keeps stores
    // in-flight when their loads execute, so loads must forward.
    let ops = vec![
        MicroOp::compute(0x1000, trace_isa::OpClass::IntDiv, [0, 0]),
        MicroOp::store(0x1004, 0xa000, 8, [0, 0]),
        MicroOp::load(0x1008, 0xa000, 8, [0, 0]),
        MicroOp::alu(0x100c, [1, 0]),
    ];
    let mut sim = Simulator::paper(ConventionalLsq::paper(), VecTrace::named(ops, "order"));
    let stats = sim.run(8_000);
    assert!(
        stats.forwarded_loads * 2 > stats.loads,
        "forwards {} of {} loads",
        stats.forwarded_loads,
        stats.loads
    );
    // Loads that executed after their store committed read the freshly
    // written line from the cache instead; forwarded loads never read it.
    assert!(stats.l1d.read_accesses <= stats.loads.saturating_sub(stats.forwarded_loads) + 16);
}

#[test]
fn readybit_blocks_loads_behind_unknown_store_addresses() {
    // The store's address depends on a long divide; the aliasing load's
    // agen completes immediately but must not access memory until the
    // store's address is known — so it always forwards (or reads the
    // line the store just wrote), never stale data. We check the
    // ordering observable: no load completes before the older store's
    // address resolution, which forces IPC below the divide ceiling.
    let ops = vec![
        MicroOp::compute(0x1000, trace_isa::OpClass::IntDiv, [0, 0]),
        MicroOp::store(0x1004, 0xa000, 8, [1, 0]), // address after the divide
        MicroOp::load(0x1008, 0xa000, 8, [0, 0]),  // agen immediately
        MicroOp::alu(0x100c, [3, 0]),
    ];
    let mut sim = Simulator::paper(ConventionalLsq::paper(), VecTrace::named(ops, "readybit"));
    let stats = sim.run(8_000);
    // 3 dividers x 20 cycles non-pipelined bound the whole loop: 4 ops per
    // divide -> IPC <= 0.6. If loads ignored readyBit they would still be
    // bound by this, so additionally require that some loads forwarded
    // (they waited for the store address and then saw its datum).
    assert!(stats.ipc() <= 0.62, "ipc {}", stats.ipc());
    assert!(stats.forwarded_loads > 0, "no forwarding at all");
}

#[test]
fn samie_places_and_commits() {
    let ops = vec![
        MicroOp::store(0x1000, 0xb000, 8, [0, 0]),
        MicroOp::load(0x1004, 0xb000, 8, [0, 0]),
        MicroOp::load(0x1008, 0xb008, 8, [0, 0]),
        MicroOp::alu(0x100c, [2, 0]),
    ];
    let mut sim = Simulator::paper(SamieLsq::paper(), VecTrace::named(ops, "samie"));
    let stats = sim.run(20_000);
    assert!(stats.ipc() > 1.0, "ipc = {}", stats.ipc());
    assert_eq!(stats.deadlock_flushes, 0);
    assert!(stats.forwarded_loads > 0);
    // Same-line loads reuse the entry's cached location: way-known
    // accesses must appear.
    assert!(stats.l1d.way_known_accesses > 0, "no way-known accesses");
    // The cached translation spares the D-TLB.
    assert!(stats.dtlb_accesses < stats.l1d.accesses());
}

#[test]
fn samie_deadlocks_are_detected_and_flushed() {
    // A SAMIE-LSQ with a single bank/entry/slot, no shared entries beyond
    // one, and a tiny AddrBuffer, fed with loads that all map to distinct
    // lines of the same bank: constant conflicts, guaranteed deadlocks,
    // but forward progress via flush-and-replay.
    let cfg = SamieConfig {
        banks: 1,
        entries_per_bank: 1,
        slots_per_entry: 1,
        shared_entries: 1,
        abuf_slots: 2,
    };
    // Every iteration: a load whose address waits on a 20-cycle divide,
    // then two loads with immediate addresses. The young loads fill the
    // single entry, the shared entry and the AddrBuffer before the old
    // load's address arrives — the §3.3 deadlock: the old load reaches
    // the ROB head unplaced and only a flush can free the entries its
    // younger neighbours hold.
    let mut ops = Vec::new();
    for i in 0..8u64 {
        ops.push(MicroOp::compute(
            0x1000 + i * 16,
            trace_isa::OpClass::IntDiv,
            [0, 0],
        ));
        ops.push(MicroOp::load(0x1004 + i * 16, 0xc000 + i * 192, 8, [1, 0]));
        ops.push(MicroOp::load(0x1008 + i * 16, 0xc040 + i * 192, 8, [0, 0]));
        ops.push(MicroOp::load(0x100c + i * 16, 0xc080 + i * 192, 8, [0, 0]));
    }
    let mut sim = Simulator::paper(SamieLsq::new(cfg), VecTrace::named(ops, "deadlock"));
    let stats = sim.run(3_000);
    assert!(stats.committed >= 3_000, "must make forward progress");
    assert!(
        stats.deadlock_flushes + stats.nospace_flushes > 0,
        "this configuration must conflict (deadlocks {}, nospace {})",
        stats.deadlock_flushes,
        stats.nospace_flushes
    );
}

#[test]
fn samie_matches_conventional_ipc_on_friendly_code() {
    let ops: Vec<MicroOp> = (0..64)
        .map(|i| {
            if i % 3 == 0 {
                MicroOp::load(0x1000 + i * 4, 0xd000 + (i / 3) * 8, 8, [0, 0])
            } else {
                MicroOp::alu(0x1000 + i * 4, [1, 0])
            }
        })
        .collect();
    let mut conv = Simulator::paper(
        ConventionalLsq::paper(),
        VecTrace::named(ops.clone(), "friendly"),
    );
    let conv_ipc = conv.run(30_000).ipc();
    let mut samie = Simulator::paper(SamieLsq::paper(), VecTrace::named(ops, "friendly"));
    let samie_ipc = samie.run(30_000).ipc();
    let loss = (conv_ipc - samie_ipc) / conv_ipc;
    assert!(
        loss.abs() < 0.02,
        "IPC loss {loss} (conv {conv_ipc}, samie {samie_ipc})"
    );
}

#[test]
fn warm_up_resets_statistics() {
    let mut sim = Simulator::paper(UnboundedLsq::new(), alu_trace());
    sim.warm_up(5_000);
    let s = sim.stats();
    assert_eq!(s.committed, 0);
    assert_eq!(s.cycles, 0);
    let s = sim.run(1_000);
    // The final cycle may commit a full group past the target.
    assert!(
        (1_000..1_008).contains(&s.committed),
        "committed {}",
        s.committed
    );
}

#[test]
fn conventional_lsq_full_stalls_dispatch_not_correctness() {
    // A tiny conventional LSQ with long-latency feeding dependencies: the
    // LSQ fills, dispatch stalls, everything still commits.
    let ops = vec![
        MicroOp::compute(0x1000, trace_isa::OpClass::FpDiv, [0, 0]),
        MicroOp::load(0x1004, 0xe000, 8, [1, 0]),
        MicroOp::load(0x1008, 0xe008, 8, [0, 0]),
    ];
    let mut sim = Simulator::paper(
        ConventionalLsq::with_capacity(2),
        VecTrace::named(ops, "tiny-lsq"),
    );
    let stats = sim.run(3_000);
    assert_eq!(stats.committed, 3_000);
    let occ = sim.lsq().occupancy();
    assert!(occ.conv_entries <= 2);
}

#[test]
fn deterministic_across_runs() {
    let mk = || {
        let spec = spec_traces::by_name("gcc").unwrap();
        let trace = spec_traces::SpecTrace::new(spec, 99);
        Simulator::new(SimConfig::paper(), SamieLsq::paper(), trace)
    };
    let a = mk().run(20_000);
    let b = mk().run(20_000);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l1d.accesses(), b.l1d.accesses());
    assert_eq!(a.lsq.bus_sends, b.lsq.bus_sends);
}

#[test]
fn spec_trace_runs_under_all_lsqs() {
    for name in ["gcc", "swim", "ammp", "mcf"] {
        let spec = spec_traces::by_name(name).unwrap();
        let t1 = spec_traces::SpecTrace::new(spec, 7);
        let mut sim = Simulator::paper(SamieLsq::paper(), t1);
        let s = sim.run(30_000);
        assert!(s.ipc() > 0.1, "{name}: samie ipc {}", s.ipc());
        let t2 = spec_traces::SpecTrace::new(spec, 7);
        let mut sim = Simulator::paper(ConventionalLsq::paper(), t2);
        let s = sim.run(30_000);
        assert!(s.ipc() > 0.1, "{name}: conventional ipc {}", s.ipc());
    }
}
