//! Pipeline instrumentation: per-stage cycle and wall-time attribution.
//!
//! The simulator's hot loop is generic over a [`PipelineProbe`]. The
//! default [`NoProbe`] compiles to nothing, so `Simulator::run` pays zero
//! cost; `samie-exp profile` passes a [`ProfilingProbe`] that brackets
//! every stage with a caller-supplied nanosecond clock and counts the
//! events each stage performed. This crate deliberately takes the clock
//! as a plain `fn() -> u64` — all wall-clock access stays in the harness
//! (the sanctioned timing layer); the simulator itself never reads time.

/// One pipeline stage, as attributed by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Completion/write-back: FU latencies expiring, consumers waking.
    Execute,
    /// The LSQ's once-per-cycle tick (AddrBuffer promotion + occupancy)
    /// and the retry drain — the LSQ search path.
    LsqTick,
    /// In-order retirement from the ROB head.
    Commit,
    /// Memory issue: forwarding decisions and D-cache accesses.
    Forward,
    /// Ready ops to functional units.
    Issue,
    /// Fetch queue → ROB (+ LSQ dispatch).
    Dispatch,
    /// Trace/replay → fetch queue through predictor, BTB and L1I.
    Fetch,
}

impl Stage {
    /// Every stage, in per-cycle execution order.
    pub const ALL: [Stage; 7] = [
        Stage::Execute,
        Stage::LsqTick,
        Stage::Commit,
        Stage::Forward,
        Stage::Issue,
        Stage::Dispatch,
        Stage::Fetch,
    ];

    /// Stable lowercase name (JSON report keys).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Execute => "execute",
            Stage::LsqTick => "lsq_tick",
            Stage::Commit => "commit",
            Stage::Forward => "forward",
            Stage::Issue => "issue",
            Stage::Dispatch => "dispatch",
            Stage::Fetch => "fetch",
        }
    }
}

/// Observer of the simulator's per-cycle stage loop. All methods default
/// to no-ops so the uninstrumented pipeline keeps its exact shape.
pub trait PipelineProbe {
    /// A stage is about to run.
    #[inline(always)]
    fn enter(&mut self, _stage: Stage) {}

    /// The stage finished, having performed `events` units of work
    /// (ops completed/committed/issued/fetched, promotions, ...).
    #[inline(always)]
    fn exit(&mut self, _stage: Stage, _events: u64) {}

    /// A full cycle was simulated.
    #[inline(always)]
    fn cycle(&mut self) {}

    /// `k` cycles were event-skipped in one jump.
    #[inline(always)]
    fn skipped(&mut self, _k: u64) {}
}

/// The zero-cost probe the ordinary `run` path uses.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl PipelineProbe for NoProbe {}

/// Accumulated per-stage attribution.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StageProfile {
    /// Wall nanoseconds spent inside each stage ([`Stage::ALL`] order).
    pub wall_ns: [u64; 7],
    /// Work events each stage performed ([`Stage::ALL`] order).
    pub events: [u64; 7],
    /// Cycles stepped one by one (every stage ran).
    pub stepped_cycles: u64,
    /// Cycles jumped over by event-driven skipping.
    pub skipped_cycles: u64,
    /// Number of skip jumps.
    pub skips: u64,
}

impl StageProfile {
    /// Wall nanoseconds attributed to `stage`.
    pub fn wall_ns_of(&self, stage: Stage) -> u64 {
        self.wall_ns[stage as usize]
    }

    /// Events attributed to `stage`.
    pub fn events_of(&self, stage: Stage) -> u64 {
        self.events[stage as usize]
    }

    /// Total wall nanoseconds across all stages.
    pub fn total_wall_ns(&self) -> u64 {
        self.wall_ns.iter().sum()
    }

    /// Total simulated cycles (stepped + skipped).
    pub fn total_cycles(&self) -> u64 {
        self.stepped_cycles + self.skipped_cycles
    }
}

/// A [`PipelineProbe`] that attributes wall time per stage using a
/// harness-supplied monotonic nanosecond clock.
#[derive(Debug)]
pub struct ProfilingProbe {
    clock: fn() -> u64,
    entered_at: u64,
    /// The attribution collected so far.
    pub profile: StageProfile,
}

impl ProfilingProbe {
    /// Probe reading time from `clock` (monotonic nanoseconds).
    pub fn new(clock: fn() -> u64) -> Self {
        ProfilingProbe {
            clock,
            entered_at: 0,
            profile: StageProfile::default(),
        }
    }
}

impl PipelineProbe for ProfilingProbe {
    #[inline]
    fn enter(&mut self, _stage: Stage) {
        self.entered_at = (self.clock)();
    }

    #[inline]
    fn exit(&mut self, stage: Stage, events: u64) {
        let now = (self.clock)();
        self.profile.wall_ns[stage as usize] += now.saturating_sub(self.entered_at);
        self.profile.events[stage as usize] += events;
    }

    #[inline]
    fn cycle(&mut self) {
        self.profile.stepped_cycles += 1;
    }

    #[inline]
    fn skipped(&mut self, k: u64) {
        self.profile.skipped_cycles += k;
        self.profile.skips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["execute", "lsq_tick", "commit", "forward", "issue", "dispatch", "fetch"]
        );
    }

    #[test]
    fn probe_accumulates() {
        fn fake_clock() -> u64 {
            use std::sync::atomic::{AtomicU64, Ordering};
            static T: AtomicU64 = AtomicU64::new(0);
            T.fetch_add(5, Ordering::Relaxed)
        }
        let mut p = ProfilingProbe::new(fake_clock);
        p.enter(Stage::Fetch);
        p.exit(Stage::Fetch, 3);
        p.cycle();
        p.skipped(10);
        assert_eq!(p.profile.wall_ns_of(Stage::Fetch), 5);
        assert_eq!(p.profile.events_of(Stage::Fetch), 3);
        assert_eq!(p.profile.stepped_cycles, 1);
        assert_eq!(p.profile.skipped_cycles, 10);
        assert_eq!(p.profile.skips, 1);
        assert_eq!(p.profile.total_cycles(), 11);
    }
}
