//! Trace capture & replay: record the trace a session consumes to a
//! compact `.strc` file, replay it bit-identically, and show the
//! adversarial workload pack next to a calibrated benchmark.
//!
//! ```sh
//! cargo run --release --example record_replay [workload] [instrs]
//! ```
//!
//! Try `alias-storm`, `pointer-chase` or `adversarial-mix` as the
//! workload to see the attack generators; any SPEC name works too.

use exp_harness::runner::RunConfig;
use exp_harness::session::SimSession;
use samie_lsq::DesignSpec;
use spec_traces::{find_workload, workload_names, Workload};
use trace_isa::strc::RecordedTrace;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "alias-storm".to_string());
    let instrs: u64 = args
        .next()
        .map(|s| s.parse().expect("instruction count"))
        .unwrap_or(100_000);

    let workload = find_workload(&name).unwrap_or_else(|err| {
        eprintln!(
            "{err}\nregistered workloads: {}",
            workload_names().join(" ")
        );
        std::process::exit(2);
    });
    let rc = RunConfig {
        instrs,
        warmup: instrs / 5,
        seed: 42,
    };
    let path = std::path::PathBuf::from("results").join(format!("{}-s{}.strc", name, rc.seed));

    println!("recording `{name}` ({instrs} instrs) under conventional vs SAMIE...");
    let live = SimSession::new(DesignSpec::conventional_paper(), &workload)
        .design(DesignSpec::samie_paper())
        .run_config(rc)
        .record(&path)
        .run();
    for run in &live.runs {
        println!("  {:<28} ipc {:.4}", run.id, run.stats.ipc());
    }
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "captured {} ops -> {} ({} bytes, {:.2} B/op)",
        live.ops_consumed,
        path.display(),
        bytes,
        bytes as f64 / live.ops_consumed.max(1) as f64
    );

    let rec = RecordedTrace::load(&path).expect("recorded trace loads");
    println!("replaying {} (`{}`)...", path.display(), rec.name());
    let replay = SimSession::new(
        DesignSpec::conventional_paper(),
        Workload::from_recorded(rec),
    )
    .design(DesignSpec::samie_paper())
    .run_config(rc)
    .run();
    let mut identical = true;
    for (a, b) in live.runs.iter().zip(&replay.runs) {
        let same = a.stats == b.stats;
        identical &= same;
        println!(
            "  {:<28} ipc {:.4}  [{}]",
            b.id,
            b.stats.ipc(),
            if same { "bit-identical" } else { "DIVERGED" }
        );
    }
    assert!(identical, "replay must reproduce the recorded session");
    println!("replay reproduced every design's statistics bit for bit.");
    println!(
        "\nsweep it like a benchmark:  samie-exp sweep --bench @{}",
        path.display()
    );
}
