//! SAMIE-LSQ design-space ablation (§3.5): sweep the DistribLSQ banking,
//! the slots-per-entry, and the SharedLSQ size around the paper's chosen
//! 64×2×8 + 8 configuration, and report IPC / deadlocks / energy for each
//! point — the study a designer would run before committing to Table 3.
//!
//! ```sh
//! cargo run --release --example design_space [bench] [instrs]
//! ```

use exp_harness::parallel_map;
use ooo_sim::Simulator;
use samie_lsq::{ConventionalLsq, FilteredLsq, SamieConfig, SamieLsq};
use spec_traces::{by_name, SpecTrace};

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "facerec".to_string());
    let instrs: u64 = args
        .next()
        .map(|s| s.parse().expect("instr count"))
        .unwrap_or(200_000);
    let spec = by_name(&bench).expect("unknown benchmark");

    let mut configs: Vec<(String, SamieConfig)> = Vec::new();
    // Banking sweep at fixed total DistribLSQ capacity (128 entries x 8).
    for (banks, epb) in [(16, 8), (32, 4), (64, 2), (128, 1)] {
        configs.push((
            format!("{banks}x{epb}x8 shared=8"),
            SamieConfig {
                banks,
                entries_per_bank: epb,
                ..SamieConfig::paper()
            },
        ));
    }
    // Slots-per-entry sweep (the §3.5 leakage/benefit trade-off).
    for slots in [2, 4, 8, 16] {
        configs.push((
            format!("64x2x{slots} shared=8"),
            SamieConfig {
                slots_per_entry: slots,
                ..SamieConfig::paper()
            },
        ));
    }
    // SharedLSQ sweep (Figure 4's design decision).
    for shared in [2, 4, 8, 16] {
        configs.push((
            format!("64x2x8 shared={shared}"),
            SamieConfig {
                shared_entries: shared,
                ..SamieConfig::paper()
            },
        ));
    }

    eprintln!("sweeping {} configurations on `{bench}`...", configs.len());
    let results = parallel_map(&configs, |(label, cfg)| {
        let mut sim = Simulator::paper(SamieLsq::new(*cfg), SpecTrace::new(spec, 42));
        sim.warm_up(instrs / 5);
        let st = sim.run(instrs);
        (label.clone(), st)
    });

    println!(
        "{:>20} {:>7} {:>10} {:>10} {:>10} {:>9}",
        "configuration", "ipc", "deadlk/Mc", "wayknown%", "tlbskip%", "lsq_nJ"
    );
    for (label, st) in &results {
        let wk = st.l1d.way_known_accesses as f64 / st.l1d.accesses() as f64;
        let skip = 1.0 - st.dtlb_accesses as f64 / st.l1d.accesses() as f64;
        println!(
            "{:>20} {:>7.3} {:>10.1} {:>9.1}% {:>9.1}% {:>9.0}",
            label,
            st.ipc(),
            st.deadlocks_per_mcycle(),
            wk * 100.0,
            skip * 100.0,
            energy_model::price_lsq(&st.lsq).total(),
        );
    }
    println!("\n(the paper's Table 3 point is 64x2x8 shared=8)");

    // Related-work corner of the design space (§2): filtering accesses to
    // a conventional LSQ saves searches but keeps the big CAM.
    let mut conv = Simulator::paper(ConventionalLsq::paper(), SpecTrace::new(spec, 42));
    conv.warm_up(instrs / 5);
    let conv_stats = conv.run(instrs);
    let mut filt = Simulator::paper(FilteredLsq::paper(), SpecTrace::new(spec, 42));
    filt.warm_up(instrs / 5);
    let filt_stats = filt.run(instrs);
    println!("\nrelated work (§2) on `{bench}`:");
    println!(
        "  conventional 128-entry CAM : {:>9.0} nJ",
        energy_model::price_lsq(&conv_stats.lsq).total()
    );
    println!(
        "  + counting Bloom filters   : {:>9.0} nJ  ({:.0}% of searches filtered)",
        energy_model::price_lsq(&filt_stats.lsq).total(),
        filt.lsq().filter_rate() * 100.0
    );
}
