//! SAMIE-LSQ design-space ablation (§3.5): sweep the DistribLSQ banking,
//! the slots-per-entry, and the SharedLSQ size around the paper's chosen
//! 64×2×8 + 8 configuration, and report IPC / deadlocks / energy for each
//! point — the study a designer would run before committing to Table 3.
//!
//! Every point is a [`DesignSpec`]; the sweep is a `parallel_map` of
//! [`run_one`] calls, exactly like the `samie-exp sweep` engine.
//!
//! ```sh
//! cargo run --release --example design_space [bench] [instrs]
//! ```

use exp_harness::parallel_map;
use exp_harness::runner::{run_one, RunConfig};
use exp_harness::session::SimSession;
use samie_lsq::{DesignSpec, FilteredLsq, SamieConfig};
use spec_traces::by_name;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "facerec".to_string());
    let instrs: u64 = args
        .next()
        .map(|s| s.parse().expect("instr count"))
        .unwrap_or(200_000);
    let spec = by_name(&bench).expect("unknown benchmark");
    let rc = RunConfig {
        instrs,
        warmup: instrs / 5,
        seed: 42,
    };

    let mut configs: Vec<(String, DesignSpec)> = Vec::new();
    // Banking sweep at fixed total DistribLSQ capacity (128 entries x 8).
    for (banks, epb) in [(16, 8), (32, 4), (64, 2), (128, 1)] {
        configs.push((
            format!("{banks}x{epb}x8 shared=8"),
            DesignSpec::Samie(SamieConfig {
                banks,
                entries_per_bank: epb,
                ..SamieConfig::paper()
            }),
        ));
    }
    // Slots-per-entry sweep (the §3.5 leakage/benefit trade-off).
    for slots in [2, 4, 8, 16] {
        configs.push((
            format!("64x2x{slots} shared=8"),
            DesignSpec::Samie(SamieConfig {
                slots_per_entry: slots,
                ..SamieConfig::paper()
            }),
        ));
    }
    // SharedLSQ sweep (Figure 4's design decision).
    for shared in [2, 4, 8, 16] {
        configs.push((
            format!("64x2x8 shared={shared}"),
            DesignSpec::Samie(SamieConfig {
                shared_entries: shared,
                ..SamieConfig::paper()
            }),
        ));
    }

    eprintln!("sweeping {} configurations on `{bench}`...", configs.len());
    let results = parallel_map(&configs, |(label, design)| {
        (label.clone(), run_one(spec, design, &rc))
    });

    println!(
        "{:>20} {:>7} {:>10} {:>10} {:>10} {:>9}",
        "configuration", "ipc", "deadlk/Mc", "wayknown%", "tlbskip%", "lsq_nJ"
    );
    for (label, st) in &results {
        let wk = st.l1d.way_known_accesses as f64 / st.l1d.accesses() as f64;
        let skip = 1.0 - st.dtlb_accesses as f64 / st.l1d.accesses() as f64;
        println!(
            "{:>20} {:>7.3} {:>10.1} {:>9.1}% {:>9.1}% {:>9.0}",
            label,
            st.ipc(),
            st.deadlocks_per_mcycle(),
            wk * 100.0,
            skip * 100.0,
            energy_model::price_lsq(&st.lsq).total(),
        );
    }
    println!("\n(the paper's Table 3 point is 64x2x8 shared=8)");

    // Related-work corner of the design space (§2): filtering accesses to
    // a conventional LSQ saves searches but keeps the big CAM. One
    // two-design session, identical traces; the filter rate is a
    // FilteredLsq-specific statistic read off the finished design.
    let mut filter_rate = 0.0;
    let report = SimSession::new(DesignSpec::conventional_paper(), spec)
        .design(DesignSpec::filtered_paper())
        .run_config(rc)
        .on_finish(|_, lsq| {
            if let Some(filt) = lsq.as_any().downcast_ref::<FilteredLsq>() {
                filter_rate = filt.filter_rate();
            }
        })
        .run();
    println!("\nrelated work (§2) on `{bench}`:");
    println!(
        "  conventional 128-entry CAM : {:>9.0} nJ",
        energy_model::price_lsq(&report.runs[0].stats.lsq).total()
    );
    println!(
        "  + counting Bloom filters   : {:>9.0} nJ  ({:.0}% of searches filtered)",
        energy_model::price_lsq(&report.runs[1].stats.lsq).total(),
        filter_rate * 100.0
    );
}
