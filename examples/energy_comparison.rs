//! Head-to-head energy comparison: conventional 128-entry LSQ vs
//! SAMIE-LSQ on identical traces — the experiment behind the paper's
//! abstract (82 % LSQ / 42 % D-cache / 73 % D-TLB savings at 0.6 % IPC
//! loss).
//!
//! ```sh
//! cargo run --release --example energy_comparison [instrs] [bench,bench,...]
//! ```

use exp_harness::runner::{run_paired_suite, RunConfig};
use spec_traces::{all_benchmarks, WorkloadSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let instrs: u64 = args
        .next()
        .map(|s| s.parse().expect("instr count"))
        .unwrap_or(200_000);
    let picks: Option<Vec<String>> = args
        .next()
        .map(|s| s.split(',').map(str::to_string).collect());

    let specs: Vec<&'static WorkloadSpec> = all_benchmarks()
        .iter()
        .filter(|s| picks.as_ref().is_none_or(|p| p.iter().any(|n| n == s.name)))
        .collect();
    assert!(!specs.is_empty(), "no benchmarks selected");

    let rc = RunConfig {
        instrs,
        warmup: instrs / 5,
        seed: 42,
    };
    eprintln!(
        "running {} benchmark(s) x 2 LSQ designs x {instrs} instructions...",
        specs.len()
    );
    let runs = run_paired_suite(&specs, &rc);

    println!(
        "{:>9}  {:>9} {:>9} {:>7}   {:>9} {:>9} {:>7}   {:>8} {:>8} {:>7}",
        "bench",
        "lsq_conv",
        "lsq_samie",
        "save",
        "d$_conv",
        "d$_samie",
        "save",
        "ipc_conv",
        "ipc_sam",
        "loss"
    );
    let (mut lc, mut ls, mut dc, mut ds, mut tl) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for r in &runs {
        let conv = energy_model::price_lsq(&r.conv.lsq).total();
        let samie = energy_model::price_lsq(&r.samie.lsq).total();
        let dcache_c = energy_model::dcache_energy_nj(&r.conv.l1d);
        let dcache_s = energy_model::dcache_energy_nj(&r.samie.l1d);
        lc += conv;
        ls += samie;
        dc += dcache_c;
        ds += dcache_s;
        tl += r.ipc_loss();
        println!(
            "{:>9}  {:>8.0}n {:>8.0}n {:>6.1}%   {:>8.0}n {:>8.0}n {:>6.1}%   {:>8.3} {:>8.3} {:>6.2}%",
            r.name,
            conv,
            samie,
            (1.0 - samie / conv) * 100.0,
            dcache_c,
            dcache_s,
            (1.0 - dcache_s / dcache_c) * 100.0,
            r.conv.ipc(),
            r.samie.ipc(),
            r.ipc_loss() * 100.0,
        );
    }
    println!(
        "\nsuite: LSQ energy saved {:.1}%, D-cache energy saved {:.1}%, mean IPC loss {:.2}%",
        (1.0 - ls / lc) * 100.0,
        (1.0 - ds / dc) * 100.0,
        tl / runs.len() as f64 * 100.0
    );
    println!("paper:                  82%                        42%                 0.6%");
}
