//! Quickstart: simulate one benchmark under the SAMIE-LSQ and print the
//! headline statistics — through the [`SimSession`] front door.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark] [instructions]
//! ```

use exp_harness::session::{SessionEvent, SimSession};
use samie_lsq::{DesignSpec, LsqOccupancy};
use spec_traces::by_name;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "gcc".to_string());
    let instrs: u64 = args
        .next()
        .map(|s| s.parse().expect("instruction count"))
        .unwrap_or(500_000);

    let spec = by_name(&bench).unwrap_or_else(|err| {
        eprintln!("{err}; available:");
        for s in spec_traces::all_benchmarks() {
            eprint!(" {}", s.name);
        }
        eprintln!();
        std::process::exit(2);
    });

    println!("simulating {instrs} instructions of `{bench}` on the paper's 8-wide core...");
    let mut occ = LsqOccupancy::default();
    let report = SimSession::new(DesignSpec::samie_paper(), spec)
        .instrs(instrs)
        .warmup(instrs / 5)
        .seed(42)
        .progress_every((instrs / 20).max(1))
        .observer(|e| {
            if let SessionEvent::Progress {
                committed, target, ..
            } = e
            {
                eprint!("\r  {committed}/{target} instructions");
            }
        })
        .on_finish(|_, lsq| {
            eprintln!();
            occ = lsq.occupancy();
        })
        .run();
    let stats = report.stats();

    println!("\n== pipeline ==");
    println!("IPC                    {:.3}", stats.ipc());
    println!(
        "branch mispredict      {:.2}%",
        stats.mispredict_ratio() * 100.0
    );
    println!("deadlock flushes/Mcyc  {:.1}", stats.deadlocks_per_mcycle());
    println!(
        "store->load forwards   {:.1}% of loads",
        stats.forwarded_loads as f64 / stats.loads as f64 * 100.0
    );

    println!("\n== SAMIE-LSQ effects ==");
    let wk = stats.l1d.way_known_accesses as f64 / stats.l1d.accesses() as f64;
    println!(
        "way-known D$ accesses  {:.1}%  (single way, no tag check)",
        wk * 100.0
    );
    let skip = 1.0 - stats.dtlb_accesses as f64 / stats.l1d.accesses() as f64;
    println!(
        "D-TLB lookups skipped  {:.1}%  (translation cached in LSQ entries)",
        skip * 100.0
    );
    println!(
        "L1D miss ratio         {:.1}%",
        stats.l1d.miss_ratio() * 100.0
    );

    println!("\n== energy (CACTI constants, Tables 4-5) ==");
    let lsq_e = energy_model::price_lsq(&stats.lsq);
    println!(
        "LSQ energy             {:.0} nJ  (dist {:.0} / shared {:.0} / abuf {:.0} / bus {:.0})",
        lsq_e.total(),
        lsq_e.dist,
        lsq_e.shared,
        lsq_e.abuf,
        lsq_e.bus
    );
    println!(
        "L1 D-cache energy      {:.0} nJ",
        energy_model::dcache_energy_nj(&stats.l1d)
    );
    println!(
        "D-TLB energy           {:.0} nJ",
        energy_model::dtlb_energy_nj(stats.dtlb_accesses)
    );

    println!(
        "\nfinal LSQ occupancy: {} DistribLSQ slots in {} entries, {} SharedLSQ slots, {} buffered",
        occ.dist_slots, occ.dist_entries, occ.shared_slots, occ.addr_buffer
    );
}
