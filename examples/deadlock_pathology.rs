//! The §3.3 deadlock-avoidance mechanism in action.
//!
//! Runs the suite's pathological benchmark (`ammp`) and narrates what the
//! SAMIE-LSQ structures are doing — SharedLSQ filling, ops parking in the
//! AddrBuffer, the ROB-head deadlock flush firing — through the
//! [`SimSession`] streaming observer, then shows that a well-behaved
//! benchmark (`gzip`) never triggers any of it.
//!
//! ```sh
//! cargo run --release --example deadlock_pathology
//! ```

use exp_harness::session::{SessionEvent, SimSession};
use samie_lsq::DesignSpec;
use spec_traces::by_name;

fn narrate(bench: &str, instrs: u64) {
    println!("--- {bench} ---");
    let spec = by_name(bench).expect("benchmark");

    let chunks = 20u64;
    let mut last_flushes = 0;
    let mut max_shared = 0;
    let mut max_abuf = 0;
    let mut abuf_busy = 0u64;
    let mut chunk = 0u64;
    let report = SimSession::new(DesignSpec::samie_paper(), spec)
        .instrs(instrs)
        .warmup(instrs / 5)
        .seed(42)
        .progress_every(instrs / chunks)
        .observer(|e| {
            let SessionEvent::Progress { stats, lsq, .. } = e else {
                return;
            };
            chunk += 1;
            let occ = lsq.occupancy();
            max_shared = max_shared.max(occ.shared_entries);
            max_abuf = max_abuf.max(occ.addr_buffer);
            if occ.addr_buffer > 0 {
                abuf_busy += 1;
            }
            let flushes = stats.deadlock_flushes + stats.nospace_flushes;
            if flushes > last_flushes {
                println!(
                    "  [{chunk:>2}/{chunks}] {} deadlock flush(es); SharedLSQ {}/8, AddrBuffer {} waiting",
                    flushes - last_flushes,
                    occ.shared_entries,
                    occ.addr_buffer
                );
                last_flushes = flushes;
            }
        })
        .run();
    let st = report.stats();
    println!(
        "  total: {} deadlock + {} no-space flushes over {} cycles ({:.1}/Mcycle)",
        st.deadlock_flushes,
        st.nospace_flushes,
        st.cycles,
        st.deadlocks_per_mcycle()
    );
    println!(
        "  peaks: SharedLSQ {max_shared}/8 entries, AddrBuffer {max_abuf}/64 slots \
         (buffer busy in {abuf_busy}/{chunks} samples)"
    );
    println!("  IPC {:.3}\n", st.ipc());
}

fn main() {
    println!("SAMIE-LSQ §3.3: when the ROB-head memory op is stuck in the AddrBuffer,");
    println!("only a pipeline flush can free the entries its younger neighbours hold.\n");
    narrate("ammp", 400_000);
    narrate("gzip", 400_000);
    println!(
        "ammp's skewed conflict phases overflow its banks; gzip never needs the escape hatch."
    );
}
