//! # samie-repro — umbrella crate
//!
//! Re-exports the whole SAMIE-LSQ reproduction workspace so that examples
//! and integration tests can depend on a single crate. See the individual
//! crates for the real APIs:
//!
//! * [`samie_lsq`] — the paper's contribution (SAMIE-LSQ) and baselines.
//! * [`ooo_sim`] — out-of-order superscalar timing simulator substrate.
//! * [`mem_hier`] — cache/TLB hierarchy.
//! * [`rv_front`] — RV32I(M) assembler + functional emulator feeding real
//!   program traces into every design.
//! * [`spec_traces`] — synthetic SPEC CPU2000-like workloads.
//! * [`energy_model`] — CACTI-lite timing/energy/area model and accounting.
//! * [`exp_store`] — content-addressed experiment store (incremental sweeps).
//! * [`exp_harness`] — experiment harness regenerating every table/figure.
//! * [`samie_analyzer`] — repo-specific static analysis (`samie-analyze`).

pub use energy_model;
pub use exp_harness;
pub use exp_store;
pub use mem_hier;
pub use ooo_sim;
pub use rv_front;
pub use samie_analyzer;
pub use samie_lsq;
pub use spec_traces;
pub use trace_isa;
